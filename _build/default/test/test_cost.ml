open Dq_relation
open Dq_core
open Helpers

let test_dl_distance_basics () =
  Alcotest.(check int) "identical" 0 (Cost.dl_distance "kitten" "kitten");
  Alcotest.(check int) "empty vs word" 5 (Cost.dl_distance "" "hello");
  Alcotest.(check int) "substitutions" 3 (Cost.dl_distance "kitten" "sitting");
  Alcotest.(check int) "transposition is 1" 1 (Cost.dl_distance "ab" "ba");
  Alcotest.(check int) "ca -> abc (OSA)" 3 (Cost.dl_distance "ca" "abc");
  Alcotest.(check int) "single insert" 1 (Cost.dl_distance "NYC" "NYCC")

let test_dl_symmetry_and_triangle_ish () =
  let words = [ "NYC"; "PHI"; "19014"; "10012"; ""; "Walnut"; "Wlanut" ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          Alcotest.(check int) "symmetric" (Cost.dl_distance a b)
            (Cost.dl_distance b a))
        words)
    words

let test_similarity_normalised () =
  Alcotest.(check (float 1e-9)) "identical" 0.
    (Cost.similarity (Value.string "abc") (Value.string "abc"));
  Alcotest.(check (float 1e-9)) "max when disjoint" 1.
    (Cost.similarity (Value.string "abc") (Value.string "xyz"));
  (* longer strings 1 char apart are closer than shorter ones (Sect. 3.2) *)
  let long =
    Cost.similarity (Value.string "Washington") (Value.string "Washingtan")
  in
  let short = Cost.similarity (Value.string "ab") (Value.string "ax") in
  Alcotest.(check bool) "long 1-off < short 1-off" true (long < short);
  Alcotest.(check (float 1e-9)) "both null" 0. (Cost.similarity Value.null Value.null);
  Alcotest.(check (float 1e-9)) "to null costs full" 1.
    (Cost.similarity (Value.string "abc") Value.null)

let test_example_3_1 () =
  (* Example 3.1: repairing t3 by (1) CT,ST := NYC,NY costs
     3/3*0.1 + 3/3*0.1 = 0.2; by (2) zip := 19014, AC := 215 costs
     1/3*0.9 + 2/5*0.8 = 0.6 (paper writes the terms in that order). *)
  let db = fig1_db () in
  let t3 = Relation.find_exn db 2 in
  let ct = Dq_relation.Schema.position_exn order_schema "CT" in
  let st = Dq_relation.Schema.position_exn order_schema "ST" in
  let zip = Dq_relation.Schema.position_exn order_schema "zip" in
  let ac = Dq_relation.Schema.position_exn order_schema "AC" in
  let option1 =
    Cost.change ~weight:(Tuple.weight t3 ct) (Tuple.get t3 ct) (Value.string "NYC")
    +. Cost.change ~weight:(Tuple.weight t3 st) (Tuple.get t3 st) (Value.string "NY")
  in
  Alcotest.(check (float 1e-6)) "option 1 costs 0.2" 0.2 option1;
  let option2 =
    Cost.change ~weight:(Tuple.weight t3 ac) (Tuple.get t3 ac) (Value.int 215)
    +. Cost.change ~weight:(Tuple.weight t3 zip) (Tuple.get t3 zip) (Value.int 19014)
  in
  (* 1/3 * 0.9 + 2/5 * 0.8 = 0.62; the paper rounds this to 0.6 *)
  Alcotest.(check (float 1e-6)) "option 2 costs 0.62" 0.62 option2;
  Alcotest.(check bool) "option 1 preferred" true (option1 < option2)

let test_tuple_change () =
  let db = fig1_db () in
  let t3 = Relation.find_exn db 2 in
  let t3' = Tuple.copy t3 in
  Alcotest.(check (float 1e-9)) "no change" 0. (Cost.tuple_change ~original:t3 ~repaired:t3');
  let ct = Dq_relation.Schema.position_exn order_schema "CT" in
  Tuple.set t3' ct (Value.string "NYC");
  Alcotest.(check (float 1e-6)) "one attr" 0.1
    (Cost.tuple_change ~original:t3 ~repaired:t3')

let test_repair_cost () =
  let db = fig1_db () in
  let db2 = Relation.copy db in
  Alcotest.(check (float 1e-9)) "identical relations" 0.
    (Cost.repair_cost ~original:db ~repair:db2);
  let t = Relation.find_exn db2 2 in
  Relation.set_value db2 t 6 (Value.string "NYC");
  Relation.set_value db2 t 7 (Value.string "NY");
  Alcotest.(check (float 1e-6)) "example 3.1 repair" 0.2
    (Cost.repair_cost ~original:db ~repair:db2)

let prop_dl_triangle =
  let word = QCheck.Gen.(string_size ~gen:(char_range 'a' 'e') (0 -- 8)) in
  QCheck.Test.make ~name:"DL distance satisfies triangle inequality" ~count:300
    (QCheck.make QCheck.Gen.(triple word word word))
    (fun (a, b, c) ->
      Cost.dl_distance a c <= Cost.dl_distance a b + Cost.dl_distance b c)

let prop_dl_bounds =
  let word = QCheck.Gen.(string_size ~gen:(char_range 'a' 'e') (0 -- 10)) in
  QCheck.Test.make ~name:"DL distance bounded by longer length" ~count:300
    (QCheck.make QCheck.Gen.(pair word word))
    (fun (a, b) ->
      let d = Cost.dl_distance a b in
      d >= abs (String.length a - String.length b)
      && d <= max (String.length a) (String.length b))

let prop_similarity_unit_interval =
  let word = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (0 -- 10)) in
  QCheck.Test.make ~name:"similarity in [0,1]" ~count:300
    (QCheck.make QCheck.Gen.(pair word word))
    (fun (a, b) ->
      let s = Cost.similarity (Value.string a) (Value.string b) in
      s >= 0. && s <= 1.)

let suite =
  [
    Alcotest.test_case "DL distance basics" `Quick test_dl_distance_basics;
    Alcotest.test_case "DL symmetry" `Quick test_dl_symmetry_and_triangle_ish;
    Alcotest.test_case "similarity normalisation" `Quick test_similarity_normalised;
    Alcotest.test_case "Example 3.1 costs" `Quick test_example_3_1;
    Alcotest.test_case "tuple change" `Quick test_tuple_change;
    Alcotest.test_case "repair cost" `Quick test_repair_cost;
    QCheck_alcotest.to_alcotest prop_dl_triangle;
    QCheck_alcotest.to_alcotest prop_dl_bounds;
    QCheck_alcotest.to_alcotest prop_similarity_unit_interval;
  ]
