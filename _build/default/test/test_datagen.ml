open Dq_relation
open Dq_cfd
open Dq_workload

let params n =
  {
    Datagen.n_tuples = n;
    n_cities = 12;
    n_streets_per_city = 5;
    n_items = 40;
    n_customers = 120;
    tableau_coverage = 0.5;
    seed = 3;
  }

let test_entity_invariants () =
  let w =
    Entities.generate ~seed:3 ~n_cities:12 ~n_streets_per_city:5 ~n_items:40
      ~n_customers:120 ()
  in
  (* city names, area codes globally unique *)
  let names = Array.to_list (Array.map (fun c -> c.Entities.city_name) w.Entities.cities) in
  Alcotest.(check int) "city names unique" 12
    (List.length (List.sort_uniq String.compare names));
  let acs = Array.to_list (Array.map (fun c -> c.Entities.area_code) w.Entities.cities) in
  Alcotest.(check int) "area codes unique" 12
    (List.length (List.sort_uniq String.compare acs));
  (* zips globally unique *)
  let zips =
    Array.to_list w.Entities.cities
    |> List.concat_map (fun c ->
           Array.to_list (Array.map (fun s -> s.Entities.zip) c.Entities.streets))
  in
  Alcotest.(check int) "zips unique" (12 * 5)
    (List.length (List.sort_uniq String.compare zips));
  (* street names unique within each city *)
  Array.iter
    (fun c ->
      let streets =
        Array.to_list (Array.map (fun s -> s.Entities.street_name) c.Entities.streets)
      in
      Alcotest.(check int) "streets unique in city" 5
        (List.length (List.sort_uniq String.compare streets)))
    w.Entities.cities;
  (* customers unique by (AC, PN) *)
  let keys =
    Array.to_list w.Entities.customers
    |> List.map (fun cu -> cu.Entities.cust_ac ^ "/" ^ cu.Entities.cust_pn)
  in
  Alcotest.(check int) "customers unique" 120
    (List.length (List.sort_uniq String.compare keys));
  (* item ids unique *)
  let ids = Array.to_list (Array.map (fun i -> i.Entities.item_id) w.Entities.items) in
  Alcotest.(check int) "item ids unique" 40
    (List.length (List.sort_uniq String.compare ids));
  (* every city's state has a tax rate *)
  Array.iter
    (fun c ->
      Alcotest.(check bool) "vat exists" true
        (String.length (Entities.vat_of w c.Entities.state) > 0))
    w.Entities.cities

let test_dataset_shape () =
  let ds = Datagen.generate (params 500) in
  Alcotest.(check int) "tuple count" 500 (Relation.cardinality ds.Datagen.dopt);
  Alcotest.(check bool) "uses the order schema" true
    (Schema.equal (Relation.schema ds.Datagen.dopt) Order_schema.schema);
  Alcotest.(check int) "seven tableaus" 7 (List.length ds.Datagen.tableaus);
  Alcotest.(check bool) "clean by construction" true
    (Violation.satisfies ds.Datagen.dopt ds.Datagen.sigma)

let test_coverage_controls_tableau_size () =
  let rows coverage =
    Datagen.pattern_row_count
      (Datagen.generate { (params 200) with Datagen.tableau_coverage = coverage })
  in
  Alcotest.(check bool) "more coverage, more rows" true (rows 1.0 > rows 0.2);
  (* at coverage 0 only the wildcard rows and phi5's state rows remain *)
  Alcotest.(check bool) "minimum structure" true (rows 0.0 > 0)

let test_cyclic_cfds_present () =
  let ds = Datagen.generate (params 200) in
  let strata = Dq_core.Depgraph.strata Order_schema.schema ds.Datagen.sigma in
  (* The dependency graph must contain a cycle: some stratum is shared by
     clauses with different RHS attributes (e.g. phi1's CT and phi6's AC). *)
  let by_stratum = Hashtbl.create 8 in
  Array.iteri
    (fun cid s ->
      let rhs = Cfd.rhs ds.Datagen.sigma.(cid) in
      let prev = match Hashtbl.find_opt by_stratum s with Some l -> l | None -> [] in
      if not (List.mem rhs prev) then Hashtbl.replace by_stratum s (rhs :: prev))
    strata;
  Alcotest.(check bool) "a stratum hosts multiple RHS attributes" true
    (Hashtbl.fold (fun _ rhss acc -> acc || List.length rhss >= 2) by_stratum false)

let test_invalid_params () =
  Alcotest.check_raises "zero tuples"
    (Invalid_argument "Datagen.generate: n_tuples must be positive") (fun () ->
      ignore (Datagen.generate { (params 200) with Datagen.n_tuples = 0 }));
  Alcotest.check_raises "bad coverage"
    (Invalid_argument "Datagen.generate: tableau_coverage must be in [0,1]")
    (fun () ->
      ignore
        (Datagen.generate { (params 200) with Datagen.tableau_coverage = 1.5 }))

let test_different_seeds_differ () =
  let d1 = Datagen.generate { (params 300) with Datagen.seed = 1 } in
  let d2 = Datagen.generate { (params 300) with Datagen.seed = 2 } in
  Alcotest.(check bool) "different data" true
    (Relation.dif d1.Datagen.dopt d2.Datagen.dopt > 0)

let suite =
  [
    Alcotest.test_case "entity invariants" `Quick test_entity_invariants;
    Alcotest.test_case "dataset shape" `Quick test_dataset_shape;
    Alcotest.test_case "coverage controls tableau size" `Quick
      test_coverage_controls_tableau_size;
    Alcotest.test_case "cyclic CFDs present" `Quick test_cyclic_cfds_present;
    Alcotest.test_case "invalid params" `Quick test_invalid_params;
    Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
  ]
