  $ cfdclean detect ../../data/orders.csv ../../data/orders.cfd
  $ cfdclean check ../../data/orders.csv ../../data/orders.cfd
  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o repaired.csv 2> /dev/null
  $ cfdclean detect repaired.csv ../../data/orders.cfd
  $ cat > contradictory.cfd <<'CFD'
  > a: [AC] -> [CT] { (_ || NYC) }
  > b: [AC] -> [CT] { (_ || PHI) }
  > CFD
  $ cfdclean check ../../data/orders.csv contradictory.cfd
  $ cfdclean repair ../../data/orders.csv contradictory.cfd
  $ cat > broken.cfd <<'CFD'
  > a: [AC] -> [CT] {
  >   (212 | NYC)
  > }
  > CFD
  $ cfdclean detect ../../data/orders.csv broken.cfd
