The Figure-1 running example ships in data/; detect finds exactly the
violations of t3 and t4 described in the paper.

  $ cfdclean detect ../../data/orders.csv ../../data/orders.cfd
  4 tuples, 21 clauses: 2 violating tuples, vio(D) = 8
  [1]

The CFD set of Figure 1(b)/2 is satisfiable.

  $ cfdclean check ../../data/orders.csv ../../data/orders.cfd
  satisfiable (21 normal-form clauses)

Repair produces a consistent instance; detect then reports zero violations.

  $ cfdclean repair ../../data/orders.csv ../../data/orders.cfd -o repaired.csv 2> /dev/null
  $ cfdclean detect repaired.csv ../../data/orders.cfd
  4 tuples, 21 clauses: 0 violating tuples, vio(D) = 0

An unsatisfiable constraint set is rejected before repairing.

  $ cat > contradictory.cfd <<'CFD'
  > a: [AC] -> [CT] { (_ || NYC) }
  > b: [AC] -> [CT] { (_ || PHI) }
  > CFD
  $ cfdclean check ../../data/orders.csv contradictory.cfd
  UNSATISFIABLE: no non-empty instance can satisfy these CFDs
  [1]
  $ cfdclean repair ../../data/orders.csv contradictory.cfd
  cfdclean: the CFD set is unsatisfiable; no repair exists
  [124]

Parse errors carry line numbers.

  $ cat > broken.cfd <<'CFD'
  > a: [AC] -> [CT] {
  >   (212 | NYC)
  > }
  > CFD
  $ cfdclean detect ../../data/orders.csv broken.cfd
  cfdclean: broken.cfd: line 2: expected '||' (single '|' is not a token)
  [124]
