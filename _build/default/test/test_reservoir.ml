open Dq_core

let test_under_capacity () =
  let r = Reservoir.create 10 in
  List.iter (Reservoir.add r) [ 1; 2; 3 ];
  Alcotest.(check int) "seen" 3 (Reservoir.seen r);
  Alcotest.(check (list int)) "everything kept" [ 1; 2; 3 ]
    (List.sort Int.compare (Reservoir.contents r))

let test_at_capacity () =
  let r = Reservoir.create 5 in
  for i = 1 to 100 do
    Reservoir.add r i
  done;
  Alcotest.(check int) "seen" 100 (Reservoir.seen r);
  let sample = Reservoir.contents r in
  Alcotest.(check int) "exactly k" 5 (List.length sample);
  Alcotest.(check int) "all distinct" 5
    (List.length (List.sort_uniq Int.compare sample));
  Alcotest.(check bool) "members of the stream" true
    (List.for_all (fun x -> x >= 1 && x <= 100) sample)

let test_zero_capacity () =
  let r = Reservoir.create 0 in
  List.iter (Reservoir.add r) [ 1; 2 ];
  Alcotest.(check (list int)) "empty" [] (Reservoir.contents r)

let test_negative_capacity () =
  Alcotest.check_raises "negative" (Invalid_argument "Reservoir.create: negative capacity")
    (fun () -> ignore (Reservoir.create (-1)))

let test_determinism () =
  let sample seed = Reservoir.sample_list ~seed 5 (List.init 100 Fun.id) in
  Alcotest.(check (list int)) "same seed, same sample" (sample 1) (sample 1);
  Alcotest.(check bool) "different seeds usually differ" true
    (sample 1 <> sample 2)

let test_uniformity_rough () =
  (* Draw k=1 from {0..9} many times: every element should appear, and no
     element should hog the sample (chi-square-ish sanity bound). *)
  let counts = Array.make 10 0 in
  for seed = 0 to 999 do
    match Reservoir.sample_list ~seed 1 (List.init 10 Fun.id) with
    | [ x ] -> counts.(x) <- counts.(x) + 1
    | _ -> Alcotest.fail "expected singleton"
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "element %d frequency %d within [50,200]" i c)
        true
        (c >= 50 && c <= 200))
    counts

let prop_sample_size =
  QCheck.Test.make ~name:"sample size is min k (length l)" ~count:200
    QCheck.(pair (int_bound 20) (list small_int))
    (fun (k, l) ->
      List.length (Reservoir.sample_list k l) = min k (List.length l))

let suite =
  [
    Alcotest.test_case "under capacity" `Quick test_under_capacity;
    Alcotest.test_case "at capacity" `Quick test_at_capacity;
    Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
    Alcotest.test_case "negative capacity" `Quick test_negative_capacity;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "rough uniformity" `Quick test_uniformity_rough;
    QCheck_alcotest.to_alcotest prop_sample_size;
  ]
