open Dq_relation
open Helpers

let test_of_string_typing () =
  Alcotest.check value "empty is null" Value.null (Value.of_string "");
  Alcotest.check value "int" (Value.int 42) (Value.of_string "42");
  Alcotest.check value "negative int" (Value.int (-7)) (Value.of_string "-7");
  Alcotest.check value "float" (Value.float 17.99) (Value.of_string "17.99");
  Alcotest.check value "string" (Value.string "NYC") (Value.of_string "NYC");
  Alcotest.check value "mixed stays string" (Value.string "a23") (Value.of_string "a23")

let test_to_string_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string)
        (Printf.sprintf "roundtrip %S" s)
        s
        (Value.to_string (Value.of_string s)))
    [ ""; "42"; "NYC"; "a23"; "8983490"; "-3"; "Hello World" ]

let test_equality () =
  Alcotest.(check bool) "null = null" true (Value.equal Value.null Value.null);
  Alcotest.(check bool) "null <> 0" false (Value.equal Value.null (Value.int 0));
  Alcotest.(check bool) "int 1 <> float 1" false
    (Value.equal (Value.int 1) (Value.float 1.));
  Alcotest.(check bool) "string equal" true
    (Value.equal (Value.string "x") (Value.string "x"))

let test_null_eq_semantics () =
  (* Section 3.1 remark 1: t1[X] = t2[X] is true if either side is null. *)
  Alcotest.(check bool) "null ~ anything" true
    (Value.equal_null_eq Value.null (Value.string "x"));
  Alcotest.(check bool) "anything ~ null" true
    (Value.equal_null_eq (Value.int 5) Value.null);
  Alcotest.(check bool) "distinct constants differ" false
    (Value.equal_null_eq (Value.int 5) (Value.int 6))

let test_compare_total_order () =
  let vs =
    [ Value.null; Value.int 1; Value.int 2; Value.float 0.5; Value.string "a" ]
  in
  (* antisymmetry and nulls-first *)
  List.iter
    (fun v ->
      List.iter
        (fun w ->
          Alcotest.(check int)
            "compare antisymmetric"
            (compare (Value.compare v w) 0)
            (compare 0 (Value.compare w v)))
        vs)
    vs;
  Alcotest.(check bool) "null smallest" true
    (List.for_all
       (fun v -> Value.is_null v || Value.compare Value.null v < 0)
       vs)

let test_hash_consistent_with_equal () =
  let pairs = [ (Value.int 3, Value.of_string "3"); (Value.string "x", Value.string "x") ] in
  List.iter
    (fun (a, b) ->
      if Value.equal a b then
        Alcotest.(check int) "equal values hash equal" (Value.hash a) (Value.hash b))
    pairs

let test_display () =
  Alcotest.(check string) "null displays as bottom" "\xe2\x8a\xa5"
    (Value.to_display Value.null);
  Alcotest.(check string) "const displays plainly" "NYC"
    (Value.to_display (Value.string "NYC"))

let suite =
  [
    Alcotest.test_case "of_string typing" `Quick test_of_string_typing;
    Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
    Alcotest.test_case "strict equality" `Quick test_equality;
    Alcotest.test_case "SQL null semantics" `Quick test_null_eq_semantics;
    Alcotest.test_case "total order" `Quick test_compare_total_order;
    Alcotest.test_case "hash/equal consistency" `Quick test_hash_consistent_with_equal;
    Alcotest.test_case "display" `Quick test_display;
  ]
