open Dq_relation
open Dq_core
open Dq_workload

let dataset () =
  let ds =
    Datagen.generate
      {
        Datagen.n_tuples = 400;
        n_cities = 8;
        n_streets_per_city = 4;
        n_items = 30;
        n_customers = 100;
        tableau_coverage = 0.8;
        seed = 13;
      }
  in
  let info = Noise.inject (Noise.default_params ~rate:0.04 ~seed:13 ()) ds in
  (ds, info)

(* The simulated domain expert of Section 7.1: compares against Dopt and
   hands back the clean tuple when the repair misses. *)
let expert dopt t' =
  match Relation.find dopt (Tuple.tid t') with
  | Some truth when Tuple.equal_values t' truth -> None
  | Some truth -> Some (Tuple.copy truth)
  | None -> None

let test_loop_terminates_and_cleans () =
  let ds, info = dataset () in
  let outcome =
    Framework.clean ~max_rounds:4
      ~sampling:(Sampling.default_config ~sample_size:150 ())
      ~user:(Framework.passive_user (expert ds.Datagen.dopt))
      info.Noise.dirty ds.Datagen.sigma
  in
  Alcotest.(check bool) "repair is consistent" true
    (Dq_cfd.Violation.satisfies outcome.Framework.repair ds.Datagen.sigma);
  Alcotest.(check bool) "ran at least one round" true
    (List.length outcome.Framework.rounds >= 1);
  Alcotest.(check bool) "rounds bounded" true
    (List.length outcome.Framework.rounds <= 4)

let test_corrections_improve_rounds () =
  let ds, info = dataset () in
  let outcome =
    Framework.clean ~max_rounds:4
      ~sampling:
        {
          (Sampling.default_config ~sample_size:200 ()) with
          (* a strict bound, to force at least one feedback round *)
          Sampling.epsilon = 0.002;
          confidence = 0.95;
        }
      ~user:(Framework.passive_user (expert ds.Datagen.dopt))
      info.Noise.dirty ds.Datagen.sigma
  in
  match outcome.Framework.rounds with
  | [] -> Alcotest.fail "no rounds"
  | first :: rest ->
    if rest <> [] then begin
      let last = List.nth rest (List.length rest - 1) in
      Alcotest.(check bool) "estimated inaccuracy does not grow" true
        (last.Framework.report.Sampling.p_hat
        <= first.Framework.report.Sampling.p_hat +. 1e-9)
    end

let test_input_not_modified () =
  let ds, info = dataset () in
  let before = Relation.copy info.Noise.dirty in
  let _ =
    Framework.clean ~max_rounds:2
      ~sampling:(Sampling.default_config ~sample_size:80 ())
      ~user:(Framework.passive_user (expert ds.Datagen.dopt))
      info.Noise.dirty ds.Datagen.sigma
  in
  Alcotest.(check int) "input untouched" 0 (Relation.dif before info.Noise.dirty)

let test_incremental_algorithm_variant () =
  let ds, info = dataset () in
  let outcome =
    Framework.clean ~max_rounds:2
      ~algorithm:(Framework.Incremental Inc_repair.By_violations)
      ~sampling:(Sampling.default_config ~sample_size:100 ())
      ~user:(Framework.passive_user (expert ds.Datagen.dopt))
      info.Noise.dirty ds.Datagen.sigma
  in
  Alcotest.(check bool) "consistent" true
    (Dq_cfd.Violation.satisfies outcome.Framework.repair ds.Datagen.sigma)

let test_cfd_revision_applied () =
  let ds, info = dataset () in
  let revised = ref false in
  let user =
    {
      Framework.inspect = (fun t' -> expert ds.Datagen.dopt t');
      revise_cfds =
        (fun sigma ->
          revised := true;
          sigma);
    }
  in
  let strict =
    { (Sampling.default_config ~sample_size:200 ()) with Sampling.epsilon = 0.002 }
  in
  let outcome =
    Framework.clean ~max_rounds:3 ~sampling:strict ~user info.Noise.dirty
      ds.Datagen.sigma
  in
  if List.length outcome.Framework.rounds > 1 then
    Alcotest.(check bool) "revise_cfds consulted between rounds" true !revised

let test_max_rounds_validation () =
  let ds, info = dataset () in
  Alcotest.check_raises "max_rounds >= 1"
    (Invalid_argument "Framework.clean: max_rounds must be >= 1") (fun () ->
      ignore
        (Framework.clean ~max_rounds:0
           ~sampling:(Sampling.default_config ())
           ~user:(Framework.passive_user (fun _ -> None))
           info.Noise.dirty ds.Datagen.sigma))

let suite =
  [
    Alcotest.test_case "loop terminates and cleans" `Quick
      test_loop_terminates_and_cleans;
    Alcotest.test_case "corrections reduce inaccuracy" `Quick
      test_corrections_improve_rounds;
    Alcotest.test_case "input not modified" `Quick test_input_not_modified;
    Alcotest.test_case "incremental repairer variant" `Quick
      test_incremental_algorithm_variant;
    Alcotest.test_case "CFD revision consulted" `Quick test_cfd_revision_applied;
    Alcotest.test_case "max_rounds validation" `Quick test_max_rounds_validation;
  ]
