open Dq_relation
open Helpers

let mk ?(tid = 0) vals = Tuple.create ~tid (Array.of_list (List.map Value.of_string vals))

let test_create_get_set () =
  let t = mk ~tid:7 [ "a"; "b" ] in
  Alcotest.(check int) "tid" 7 (Tuple.tid t);
  Alcotest.(check int) "arity" 2 (Tuple.arity t);
  Alcotest.check value "get" (Value.string "a") (Tuple.get t 0);
  Tuple.set t 0 (Value.int 9);
  Alcotest.check value "after set" (Value.int 9) (Tuple.get t 0)

let test_values_copied_on_create () =
  let src = [| Value.string "x" |] in
  let t = Tuple.create ~tid:0 src in
  src.(0) <- Value.string "mutated";
  Alcotest.check value "input array not aliased" (Value.string "x") (Tuple.get t 0)

let test_weights () =
  let t = Tuple.create ~tid:0 ~weights:[| 0.3; 0.9 |]
      [| Value.string "a"; Value.string "b" |]
  in
  Alcotest.(check (float 1e-9)) "weight 0" 0.3 (Tuple.weight t 0);
  Alcotest.(check (float 1e-9)) "total" 1.2 (Tuple.total_weight t);
  Tuple.set_weight t 0 1.0;
  Alcotest.(check (float 1e-9)) "after set_weight" 1.0 (Tuple.weight t 0)

let test_default_weights_are_one () =
  let t = mk [ "a"; "b"; "c" ] in
  Alcotest.(check (float 1e-9)) "wt(t) = arity" 3.0 (Tuple.total_weight t)

let test_weight_validation () =
  Alcotest.check_raises "weight 1.5 rejected"
    (Invalid_argument "Tuple: weight 1.5 outside [0,1]") (fun () ->
      ignore (Tuple.create ~tid:0 ~weights:[| 1.5 |] [| Value.null |]));
  let t = mk [ "a" ] in
  Alcotest.check_raises "set_weight negative"
    (Invalid_argument "Tuple: weight -0.1 outside [0,1]") (fun () ->
      Tuple.set_weight t 0 (-0.1))

let test_length_mismatch () =
  Alcotest.check_raises "weights length"
    (Invalid_argument "Tuple.create: weights/values length mismatch") (fun () ->
      ignore (Tuple.create ~tid:0 ~weights:[| 1.0 |] [| Value.null; Value.null |]))

let test_empty_rejected () =
  Alcotest.check_raises "empty tuple"
    (Invalid_argument "Tuple.create: empty tuple") (fun () ->
      ignore (Tuple.create ~tid:0 [||]))

let test_project () =
  let t = mk [ "a"; "b"; "c" ] in
  Alcotest.(check (array value)) "project"
    [| Value.string "c"; Value.string "a" |]
    (Tuple.project t [| 2; 0 |])

let test_diff_positions () =
  let t1 = mk [ "a"; "b"; "c" ] in
  let t2 = mk [ "a"; "x"; "c" ] in
  Alcotest.(check (list int)) "one diff" [ 1 ] (Tuple.diff_positions t1 t2);
  Alcotest.(check (list int)) "self diff empty" [] (Tuple.diff_positions t1 t1)

let test_copy () =
  let t = mk ~tid:3 [ "a" ] in
  let c = Tuple.copy t in
  Tuple.set c 0 (Value.string "z");
  Alcotest.check value "copy is deep" (Value.string "a") (Tuple.get t 0);
  Alcotest.(check int) "tid kept" 3 (Tuple.tid c);
  Alcotest.(check int) "tid override" 99 (Tuple.tid (Tuple.copy ~tid:99 t))

let test_equal_values () =
  let t1 = mk ~tid:1 [ "a"; "b" ] in
  let t2 = mk ~tid:2 [ "a"; "b" ] in
  Alcotest.(check bool) "tids ignored" true (Tuple.equal_values t1 t2);
  Tuple.set t2 1 Value.null;
  Alcotest.(check bool) "null breaks strict equality" false (Tuple.equal_values t1 t2)

let suite =
  [
    Alcotest.test_case "create/get/set" `Quick test_create_get_set;
    Alcotest.test_case "values copied" `Quick test_values_copied_on_create;
    Alcotest.test_case "weights" `Quick test_weights;
    Alcotest.test_case "default weights" `Quick test_default_weights_are_one;
    Alcotest.test_case "weight validation" `Quick test_weight_validation;
    Alcotest.test_case "length mismatch" `Quick test_length_mismatch;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "diff positions" `Quick test_diff_positions;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "equal_values" `Quick test_equal_values;
  ]
