open Dq_relation
open Dq_cfd
open Helpers

let schema = Schema.make ~name:"r" [ "A"; "B" ]

let c s = Pattern.const (Value.of_string s)

let test_fds_always_satisfiable () =
  let sigma =
    Cfd.number (Cfd.normalize schema (Cfd.Tableau.fd ~name:"fd" ~lhs:[ "A" ] ~rhs:[ "B" ]))
  in
  Alcotest.(check bool) "FDs satisfiable" true
    (Satisfiability.is_satisfiable schema sigma)

let test_empty_sigma () =
  Alcotest.(check bool) "empty set satisfiable" true
    (Satisfiability.is_satisfiable schema [||])

let test_direct_contradiction () =
  (* (_ -> B=1) and (_ -> B=2): no single tuple can satisfy both. *)
  let sigma =
    Cfd.number
      [
        Cfd.make schema ~name:"c1" ~lhs:[ ("A", Pattern.Wild) ] ~rhs:("B", c "1");
        Cfd.make schema ~name:"c2" ~lhs:[ ("A", Pattern.Wild) ] ~rhs:("B", c "2");
      ]
  in
  Alcotest.(check bool) "contradiction" false
    (Satisfiability.is_satisfiable schema sigma);
  Alcotest.check_raises "check_exn raises"
    (Invalid_argument "Satisfiability.check_exn: the CFD set is unsatisfiable")
    (fun () -> Satisfiability.check_exn schema sigma)

let test_conditional_contradiction_avoidable () =
  (* (A=k -> B=1) and (A=k -> B=2) conflict only when A=k; a tuple with a
     fresh A value satisfies both, so the set is satisfiable. *)
  let sigma =
    Cfd.number
      [
        Cfd.make schema ~name:"c1" ~lhs:[ ("A", c "k") ] ~rhs:("B", c "1");
        Cfd.make schema ~name:"c2" ~lhs:[ ("A", c "k") ] ~rhs:("B", c "2");
      ]
  in
  Alcotest.(check bool) "avoidable via fresh A" true
    (Satisfiability.is_satisfiable schema sigma);
  match Satisfiability.witness schema sigma with
  | Some w ->
    Alcotest.(check bool) "witness avoids k" false
      (Value.equal w.(0) (Value.string "k"))
  | None -> Alcotest.fail "expected a witness"

let test_chained_contradiction () =
  (* Every A value is forced into the contradiction through a chain:
     (_ -> A=k) plus (A=k -> B=1), (A=k -> B=2). *)
  let schema3 = Schema.make ~name:"r" [ "X"; "A"; "B" ] in
  let sigma =
    Cfd.number
      [
        Cfd.make schema3 ~name:"c0" ~lhs:[ ("X", Pattern.Wild) ] ~rhs:("A", c "k");
        Cfd.make schema3 ~name:"c1" ~lhs:[ ("A", c "k") ] ~rhs:("B", c "1");
        Cfd.make schema3 ~name:"c2" ~lhs:[ ("A", c "k") ] ~rhs:("B", c "2");
      ]
  in
  Alcotest.(check bool) "chain forces contradiction" false
    (Satisfiability.is_satisfiable schema3 sigma)

let test_witness_satisfies () =
  let sigma = fig1_sigma () in
  match Satisfiability.witness order_schema sigma with
  | None -> Alcotest.fail "fig1 sigma is satisfiable"
  | Some values ->
    let rel = Relation.create order_schema in
    ignore (Relation.insert rel values);
    Alcotest.(check bool) "witness tuple satisfies sigma" true
      (Dq_cfd.Violation.satisfies rel sigma)

let test_multi_lhs_patterns () =
  (* Constraints triggered by a conjunction of constants. *)
  let schema3 = Schema.make ~name:"r" [ "X"; "Y"; "Z" ] in
  let sigma =
    Cfd.number
      [
        Cfd.make schema3 ~name:"c1" ~lhs:[ ("X", Pattern.Wild) ] ~rhs:("Y", c "a");
        Cfd.make schema3 ~name:"c2" ~lhs:[ ("Y", c "a") ] ~rhs:("Z", c "b");
        Cfd.make schema3 ~name:"c3"
          ~lhs:[ ("X", Pattern.Wild); ("Z", c "b") ]
          ~rhs:("Y", c "a");
      ]
  in
  Alcotest.(check bool) "consistent chain" true
    (Satisfiability.is_satisfiable schema3 sigma)

let suite =
  [
    Alcotest.test_case "FDs always satisfiable" `Quick test_fds_always_satisfiable;
    Alcotest.test_case "empty sigma" `Quick test_empty_sigma;
    Alcotest.test_case "direct contradiction" `Quick test_direct_contradiction;
    Alcotest.test_case "conditional contradiction avoidable" `Quick
      test_conditional_contradiction_avoidable;
    Alcotest.test_case "chained contradiction" `Quick test_chained_contradiction;
    Alcotest.test_case "witness satisfies sigma" `Quick test_witness_satisfies;
    Alcotest.test_case "multi-attribute LHS" `Quick test_multi_lhs_patterns;
  ]
