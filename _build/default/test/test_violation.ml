open Dq_relation
open Dq_cfd
open Helpers

let test_fig1_detection () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  Alcotest.(check bool) "dirty" false (Violation.satisfies db sigma);
  (* t3 (tid 2) and t4 (tid 3) each violate phi1 and phi2. *)
  Alcotest.(check (list int)) "violating tids" [ 2; 3 ]
    (Violation.violating_tids db sigma)

let test_vio_counts_match_paper () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let counts = Violation.vio_counts db sigma in
  (* t3: violates phi1 rows for CT and ST (tp (212,_||_,NYC,NY) gives 2
     clauses) and phi2 rows for CT and ST: 4 single-tuple violations. *)
  Alcotest.(check (option int)) "vio(t3)" (Some 4) (Hashtbl.find_opt counts 2);
  Alcotest.(check (option int)) "vio(t4)" (Some 4) (Hashtbl.find_opt counts 3);
  Alcotest.(check (option int)) "t1 clean" None (Hashtbl.find_opt counts 0);
  Alcotest.(check int) "total" 8 (Violation.total db sigma)

let test_vio_tuple_agrees_with_counts () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let counts = Violation.vio_counts db sigma in
  Relation.iter
    (fun t ->
      let expected =
        match Hashtbl.find_opt counts (Tuple.tid t) with Some n -> n | None -> 0
      in
      Alcotest.(check int)
        (Printf.sprintf "vio_tuple tid %d" (Tuple.tid t))
        expected
        (Violation.vio_tuple db sigma t))
    db

let test_single_tuple_can_violate_cfd () =
  (* Example 2.2: unlike FDs, one tuple alone can violate a CFD. *)
  let schema = Schema.make ~name:"r" [ "A"; "B" ] in
  let rel = Relation.create schema in
  ignore (Relation.insert rel [| Value.string "k"; Value.string "wrong" |]);
  let sigma =
    Cfd.number
      [
        Cfd.make schema ~name:"c"
          ~lhs:[ ("A", Pattern.const (Value.string "k")) ]
          ~rhs:("B", Pattern.const (Value.string "right"));
      ]
  in
  Alcotest.(check int) "one violation from one tuple" 1 (Violation.total rel sigma)

let test_pair_violation_counting () =
  let schema = Schema.make ~name:"r" [ "A"; "B" ] in
  let rel = Relation.create schema in
  let add a b = ignore (Relation.insert rel [| Value.string a; Value.string b |]) in
  (* group x: values 1,1,2 -> the two 1s each conflict with the 2 (1 each),
     the 2 conflicts with both 1s (2). *)
  add "x" "1";
  add "x" "1";
  add "x" "2";
  add "y" "9";
  let sigma =
    Cfd.number (Cfd.normalize schema (Cfd.Tableau.fd ~name:"fd" ~lhs:[ "A" ] ~rhs:[ "B" ]))
  in
  let counts = Violation.vio_counts rel sigma in
  Alcotest.(check (option int)) "first 1" (Some 1) (Hashtbl.find_opt counts 0);
  Alcotest.(check (option int)) "second 1" (Some 1) (Hashtbl.find_opt counts 1);
  Alcotest.(check (option int)) "the 2" (Some 2) (Hashtbl.find_opt counts 2);
  Alcotest.(check int) "total 4" 4 (Violation.total rel sigma)

let test_null_resolves_everything () =
  let schema = Schema.make ~name:"r" [ "A"; "B" ] in
  let rel = Relation.create schema in
  let t1 = Relation.insert rel [| Value.string "x"; Value.string "1" |] in
  let t2 = Relation.insert rel [| Value.string "x"; Value.string "2" |] in
  let sigma =
    Cfd.number (Cfd.normalize schema (Cfd.Tableau.fd ~name:"fd" ~lhs:[ "A" ] ~rhs:[ "B" ]))
  in
  Alcotest.(check bool) "conflict" false (Violation.satisfies rel sigma);
  (* nulling one RHS resolves the pair *)
  Relation.set_value rel t2 1 Value.null;
  Alcotest.(check bool) "null RHS resolves" true (Violation.satisfies rel sigma);
  (* restore, then null an LHS instead: pattern match fails, also resolves *)
  Relation.set_value rel t2 1 (Value.string "2");
  Relation.set_value rel t1 0 Value.null;
  Alcotest.(check bool) "null LHS resolves" true (Violation.satisfies rel sigma)

let test_find_all_covers_all_violators () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let violations = Violation.find_all db sigma in
  let mentioned =
    List.concat_map Violation.tids violations |> List.sort_uniq Int.compare
  in
  Alcotest.(check (list int)) "all violating tids mentioned" [ 2; 3 ] mentioned;
  List.iter
    (fun v ->
      match v with
      | Violation.Single { cfd; _ } ->
        Alcotest.(check bool) "singles come from constant clauses" true
          (Cfd.is_constant cfd)
      | Violation.Pair { cfd; _ } ->
        Alcotest.(check bool) "pairs come from wildcard clauses" false
          (Cfd.is_constant cfd))
    violations

let test_pair_conflict_symmetric () =
  let db = fig1_db () in
  let sigma = fig1_sigma () in
  let t1 = Relation.find_exn db 0 and t2 = Relation.find_exn db 1 in
  Array.iter
    (fun cfd ->
      Alcotest.(check bool) "symmetric" (Violation.pair_conflict cfd t1 t2)
        (Violation.pair_conflict cfd t2 t1))
    sigma

let suite =
  [
    Alcotest.test_case "fig1 detection" `Quick test_fig1_detection;
    Alcotest.test_case "vio counts" `Quick test_vio_counts_match_paper;
    Alcotest.test_case "vio_tuple agrees with vio_counts" `Quick
      test_vio_tuple_agrees_with_counts;
    Alcotest.test_case "single tuple violates CFD" `Quick
      test_single_tuple_can_violate_cfd;
    Alcotest.test_case "pair violation counting" `Quick test_pair_violation_counting;
    Alcotest.test_case "null resolves violations" `Quick test_null_resolves_everything;
    Alcotest.test_case "find_all covers violators" `Quick
      test_find_all_covers_all_violators;
    Alcotest.test_case "pair_conflict symmetric" `Quick test_pair_conflict_symmetric;
  ]
