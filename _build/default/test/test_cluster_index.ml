open Dq_relation
open Dq_core

let vs l = List.map Value.of_string l

let test_empty () =
  let t = Cluster_index.build [] in
  Alcotest.(check int) "size" 0 (Cluster_index.size t);
  Alcotest.(check (list string)) "nearest" []
    (List.map Value.to_string (Cluster_index.nearest t (Value.string "x") ~k:3))

let test_nulls_and_duplicates_dropped () =
  let t = Cluster_index.build (Value.null :: vs [ "a"; "a"; "b" ]) in
  Alcotest.(check int) "deduped, null-free" 2 (Cluster_index.size t)

let test_nearest_returns_closest_first () =
  let domain = vs [ "Walnut"; "Spruce"; "Canel"; "Broad"; "Oak"; "Walnot" ] in
  let t = Cluster_index.build domain in
  (match Cluster_index.nearest t (Value.string "Walnut") ~k:2 with
  | first :: second :: _ ->
    Alcotest.(check string) "exact value first" "Walnut" (Value.to_string first);
    Alcotest.(check string) "typo neighbour second" "Walnot"
      (Value.to_string second)
  | _ -> Alcotest.fail "expected two results");
  Alcotest.(check int) "k caps results" 3
    (List.length (Cluster_index.nearest t (Value.string "Oak") ~k:3))

let test_nearest_enumerates_everything () =
  let domain = vs [ "a"; "b"; "c"; "d"; "e" ] in
  let t = Cluster_index.build domain in
  let all = Cluster_index.nearest t (Value.string "q") ~k:100 in
  Alcotest.(check int) "all values reachable" 5 (List.length all);
  Alcotest.(check (list string)) "same set"
    (List.map Value.to_string (List.sort Value.compare domain))
    (List.sort String.compare (List.map Value.to_string all))

let test_find_first () =
  let t = Cluster_index.build (vs [ "10012"; "19014"; "19104" ]) in
  let found =
    Cluster_index.find_first t (Value.string "19015") (fun v ->
        not (Value.equal v (Value.string "19014")))
  in
  Alcotest.(check bool) "found something" true (Option.is_some found);
  Alcotest.(check bool) "respects predicate" false
    (Value.equal (Option.get found) (Value.string "19014"));
  Alcotest.(check (option string)) "no match" None
    (Option.map Value.to_string
       (Cluster_index.find_first t (Value.string "x") (fun _ -> false)))

let test_identical_renderings () =
  (* Int 1 and String "1" render identically; the tree must still hold both. *)
  let t = Cluster_index.build [ Value.int 1; Value.string "1"; Value.int 2 ] in
  Alcotest.(check int) "3 values" 3 (Cluster_index.size t);
  Alcotest.(check int) "all enumerable" 3
    (List.length (Cluster_index.nearest t (Value.int 1) ~k:10))

let test_of_attribute () =
  let schema = Schema.make ~name:"r" [ "A" ] in
  let rel = Relation.create schema in
  List.iter
    (fun s -> ignore (Relation.insert rel [| Value.string s |]))
    [ "x"; "y"; "x" ];
  let t = Cluster_index.of_attribute rel 0 in
  Alcotest.(check int) "distinct adom" 2 (Cluster_index.size t)

let prop_enumeration_complete =
  let word = QCheck.Gen.(string_size ~gen:(char_range 'a' 'd') (1 -- 5)) in
  QCheck.Test.make ~name:"best-first search reaches every leaf" ~count:100
    (QCheck.make QCheck.Gen.(pair (list_size (0 -- 40) word) word))
    (fun (words, query) ->
      let domain = List.sort_uniq String.compare words in
      let t = Cluster_index.build (List.map Value.string domain) in
      let out = Cluster_index.nearest t (Value.string query) ~k:1000 in
      List.length out = List.length domain)

let prop_find_first_finds_members =
  (* The enumeration is approximate in order but must be complete: any
     domain member is reachable through find_first. *)
  let word = QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (1 -- 4)) in
  QCheck.Test.make ~name:"find_first reaches any domain member" ~count:100
    (QCheck.make QCheck.Gen.(pair (list_size (1 -- 25) word) word))
    (fun (words, query) ->
      let target = Value.string (List.hd words) in
      let t = Cluster_index.build (List.map Value.string words) in
      match Cluster_index.find_first t (Value.string query) (Value.equal target) with
      | Some v -> Value.equal v target
      | None -> false)

let suite =
  [
    Alcotest.test_case "empty domain" `Quick test_empty;
    Alcotest.test_case "nulls/duplicates dropped" `Quick
      test_nulls_and_duplicates_dropped;
    Alcotest.test_case "closest first" `Quick test_nearest_returns_closest_first;
    Alcotest.test_case "enumeration complete" `Quick
      test_nearest_enumerates_everything;
    Alcotest.test_case "find_first" `Quick test_find_first;
    Alcotest.test_case "identical renderings" `Quick test_identical_renderings;
    Alcotest.test_case "of_attribute" `Quick test_of_attribute;
    QCheck_alcotest.to_alcotest prop_enumeration_complete;
    QCheck_alcotest.to_alcotest prop_find_first_finds_members;
  ]
