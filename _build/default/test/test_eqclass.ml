open Dq_relation
open Dq_core

(* A tiny universe: original value of (tid, attr) is "t<tid>a<attr>". *)
let make () =
  Eqclass.create ~arity:4 ~original:(fun ~tid ~attr ->
      Value.string (Printf.sprintf "t%da%d" tid attr))

let test_singletons () =
  let eq = make () in
  let c = Eqclass.cell eq ~tid:3 ~attr:2 in
  Alcotest.(check (pair int int)) "decode" (3, 2) (Eqclass.tid_attr eq c);
  Alcotest.(check bool) "target unfixed" true (Eqclass.target eq c = Eqclass.Unfixed);
  Alcotest.check (Alcotest.testable Value.pp Value.equal) "repr is original"
    (Value.string "t3a2") (Eqclass.repr eq c);
  Alcotest.(check int) "size" 1 (Eqclass.size eq c);
  Alcotest.(check (list (pair int int))) "members" [ (3, 2) ] (Eqclass.members eq c)

let test_attr_bounds () =
  let eq = make () in
  Alcotest.check_raises "attr out of range"
    (Invalid_argument "Eqclass.cell: attribute 4 out of range") (fun () ->
      ignore (Eqclass.cell eq ~tid:0 ~attr:4))

let test_union_merges_members () =
  let eq = make () in
  let c1 = Eqclass.cell eq ~tid:0 ~attr:0 in
  let c2 = Eqclass.cell eq ~tid:1 ~attr:0 in
  let c3 = Eqclass.cell eq ~tid:2 ~attr:0 in
  ignore (Eqclass.union eq c1 c2);
  ignore (Eqclass.union eq c2 c3);
  Alcotest.(check bool) "same class" true (Eqclass.same_class eq c1 c3);
  Alcotest.(check int) "size 3" 3 (Eqclass.size eq c1);
  Alcotest.(check (list (pair int int))) "members"
    [ (0, 0); (1, 0); (2, 0) ]
    (List.sort compare (Eqclass.members eq c1))

let test_union_idempotent () =
  let eq = make () in
  let c1 = Eqclass.cell eq ~tid:0 ~attr:0 in
  let c2 = Eqclass.cell eq ~tid:1 ~attr:0 in
  let r = Eqclass.union eq c1 c2 in
  Alcotest.(check int) "self union" r (Eqclass.union eq c1 c2);
  Alcotest.(check int) "size still 2" 2 (Eqclass.size eq c1)

let test_target_lattice () =
  let eq = make () in
  let c = Eqclass.cell eq ~tid:0 ~attr:0 in
  Eqclass.set_target eq c (Eqclass.Const (Value.string "v"));
  Alcotest.(check bool) "const set" true
    (Eqclass.target eq c = Eqclass.Const (Value.string "v"));
  (* same constant is a no-op, different constant rejected *)
  Eqclass.set_target eq c (Eqclass.Const (Value.string "v"));
  Alcotest.check_raises "const -> other const"
    (Invalid_argument "Eqclass.set_target: illegal move v -> w") (fun () ->
      Eqclass.set_target eq c (Eqclass.Const (Value.string "w")));
  Alcotest.check_raises "const -> unfixed"
    (Invalid_argument "Eqclass.set_target: illegal move v -> _") (fun () ->
      Eqclass.set_target eq c Eqclass.Unfixed);
  (* null is terminal *)
  Eqclass.set_target eq c Eqclass.Null;
  Alcotest.check_raises "null -> const"
    (Invalid_argument "Eqclass.set_target: illegal move null -> v") (fun () ->
      Eqclass.set_target eq c (Eqclass.Const (Value.string "v")))

let test_union_target_join () =
  let eq = make () in
  let c1 = Eqclass.cell eq ~tid:0 ~attr:0 in
  let c2 = Eqclass.cell eq ~tid:1 ~attr:0 in
  Eqclass.set_target eq c2 (Eqclass.Const (Value.string "v"));
  ignore (Eqclass.union eq c1 c2);
  Alcotest.(check bool) "const wins over unfixed" true
    (Eqclass.target eq c1 = Eqclass.Const (Value.string "v"));
  (* null dominates *)
  let c3 = Eqclass.cell eq ~tid:2 ~attr:0 in
  Eqclass.set_target eq c3 Eqclass.Null;
  ignore (Eqclass.union eq c1 c3);
  Alcotest.(check bool) "null dominates" true (Eqclass.target eq c1 = Eqclass.Null)

let test_union_conflicting_constants_rejected () =
  let eq = make () in
  let c1 = Eqclass.cell eq ~tid:0 ~attr:0 in
  let c2 = Eqclass.cell eq ~tid:1 ~attr:0 in
  Eqclass.set_target eq c1 (Eqclass.Const (Value.string "a"));
  Eqclass.set_target eq c2 (Eqclass.Const (Value.string "b"));
  Alcotest.check_raises "distinct constants"
    (Invalid_argument "Eqclass.union: classes with distinct constant targets a / b")
    (fun () -> ignore (Eqclass.union eq c1 c2))

let test_effective () =
  let eq = make () in
  let c = Eqclass.cell eq ~tid:0 ~attr:1 in
  Alcotest.(check bool) "unfixed -> repr" true
    (Value.equal (Eqclass.effective eq c) (Value.string "t0a1"));
  Eqclass.set_target eq c (Eqclass.Const (Value.string "v"));
  Alcotest.(check bool) "const -> const" true
    (Value.equal (Eqclass.effective eq c) (Value.string "v"));
  Eqclass.set_target eq c Eqclass.Null;
  Alcotest.(check bool) "null -> null" true (Value.is_null (Eqclass.effective eq c))

let test_set_repr () =
  let eq = make () in
  let c = Eqclass.cell eq ~tid:0 ~attr:0 in
  Eqclass.set_repr eq c (Value.string "better");
  Alcotest.(check bool) "repr updated" true
    (Value.equal (Eqclass.effective eq c) (Value.string "better"));
  Eqclass.set_target eq c Eqclass.Null;
  Alcotest.check_raises "fixed class rejects set_repr"
    (Invalid_argument "Eqclass.set_repr: representative is fixed once targeted")
    (fun () -> Eqclass.set_repr eq c (Value.string "x"))

let test_counts () =
  let eq = make () in
  let c1 = Eqclass.cell eq ~tid:0 ~attr:0 in
  let c2 = Eqclass.cell eq ~tid:1 ~attr:0 in
  let _c3 = Eqclass.cell eq ~tid:2 ~attr:0 in
  Alcotest.(check int) "3 cells" 3 (Eqclass.n_cells eq);
  Alcotest.(check int) "3 classes" 3 (Eqclass.n_classes eq);
  ignore (Eqclass.union eq c1 c2);
  Alcotest.(check int) "cells stable" 3 (Eqclass.n_cells eq);
  Alcotest.(check int) "2 classes" 2 (Eqclass.n_classes eq);
  let seen = ref 0 in
  Eqclass.iter_roots (fun _ -> incr seen) eq;
  Alcotest.(check int) "iter_roots visits classes" 2 !seen

let prop_union_find_invariants =
  QCheck.Test.make ~name:"random unions keep sizes and membership consistent"
    ~count:100
    QCheck.(list (pair (int_bound 19) (int_bound 19)))
    (fun pairs ->
      let eq =
        Eqclass.create ~arity:1 ~original:(fun ~tid ~attr:_ ->
            Value.int tid)
      in
      let cell i = Eqclass.cell eq ~tid:i ~attr:0 in
      List.iter (fun (i, j) -> ignore (Eqclass.union eq (cell i) (cell j))) pairs;
      (* every cell's members list contains the cell itself, and sizes agree *)
      List.for_all
        (fun i ->
          let ms = Eqclass.members eq (cell i) in
          List.mem (i, 0) ms && List.length ms = Eqclass.size eq (cell i))
        (List.init 20 Fun.id))

let suite =
  [
    Alcotest.test_case "singletons" `Quick test_singletons;
    Alcotest.test_case "attribute bounds" `Quick test_attr_bounds;
    Alcotest.test_case "union merges members" `Quick test_union_merges_members;
    Alcotest.test_case "union idempotent" `Quick test_union_idempotent;
    Alcotest.test_case "target lattice" `Quick test_target_lattice;
    Alcotest.test_case "union joins targets" `Quick test_union_target_join;
    Alcotest.test_case "conflicting constants rejected" `Quick
      test_union_conflicting_constants_rejected;
    Alcotest.test_case "effective values" `Quick test_effective;
    Alcotest.test_case "set_repr" `Quick test_set_repr;
    Alcotest.test_case "cell and class counts" `Quick test_counts;
    QCheck_alcotest.to_alcotest prop_union_find_invariants;
  ]
