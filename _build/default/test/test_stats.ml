open Dq_core

let test_normal_cdf () =
  Alcotest.(check (float 1e-5)) "cdf(0)" 0.5 (Stats.normal_cdf 0.);
  Alcotest.(check (float 1e-5)) "cdf(1.96)" 0.97500 (Stats.normal_cdf 1.96);
  Alcotest.(check (float 1e-5)) "cdf(-1.96)" 0.02500 (Stats.normal_cdf (-1.96));
  Alcotest.(check (float 1e-5)) "cdf(3)" 0.99865 (Stats.normal_cdf 3.)

let test_normal_quantile () =
  Alcotest.(check (float 1e-5)) "q(0.5)" 0. (Stats.normal_quantile 0.5);
  Alcotest.(check (float 1e-5)) "q(0.95)" 1.64485 (Stats.normal_quantile 0.95);
  Alcotest.(check (float 1e-5)) "q(0.975)" 1.95996 (Stats.normal_quantile 0.975);
  Alcotest.(check (float 1e-5)) "q(0.01)" (-2.32635) (Stats.normal_quantile 0.01);
  Alcotest.check_raises "q(0) invalid"
    (Invalid_argument "Stats.normal_quantile: p must be in (0,1)") (fun () ->
      ignore (Stats.normal_quantile 0.))

let test_quantile_inverts_cdf () =
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-5))
        (Printf.sprintf "cdf(q(%g)) = %g" p p)
        p
        (Stats.normal_cdf (Stats.normal_quantile p)))
    [ 0.001; 0.01; 0.1; 0.3; 0.5; 0.7; 0.9; 0.99; 0.999 ]

let test_z_statistic () =
  (* p_hat = eps gives z = 0; below eps gives negative z. *)
  Alcotest.(check (float 1e-9)) "at bound" 0.
    (Stats.z_statistic ~p_hat:0.05 ~epsilon:0.05 ~sample_size:100);
  Alcotest.(check bool) "below bound negative" true
    (Stats.z_statistic ~p_hat:0.01 ~epsilon:0.05 ~sample_size:100 < 0.);
  (* textbook value: (0.02-0.05)/sqrt(0.05*0.95/400) = -2.7524 *)
  Alcotest.(check (float 1e-3)) "known value" (-2.7524)
    (Stats.z_statistic ~p_hat:0.02 ~epsilon:0.05 ~sample_size:400)

let test_accept () =
  (* clean sample of decent size: accept *)
  Alcotest.(check bool) "0% observed accepted" true
    (Stats.accept ~p_hat:0.0 ~epsilon:0.05 ~confidence:0.95 ~sample_size:200);
  (* observed exactly at the bound: do not accept *)
  Alcotest.(check bool) "at bound rejected" false
    (Stats.accept ~p_hat:0.05 ~epsilon:0.05 ~confidence:0.95 ~sample_size:200);
  (* small sample: even 0% cannot clear the bar for eps=0.05, d=0.95 *)
  Alcotest.(check bool) "tiny sample inconclusive" false
    (Stats.accept ~p_hat:0.0 ~epsilon:0.05 ~confidence:0.95 ~sample_size:20)

let test_chernoff_monotonicity () =
  let k e d c = Stats.chernoff_sample_size ~epsilon:e ~confidence:d ~c in
  Alcotest.(check bool) "lower eps needs more samples" true
    (k 0.01 0.95 10 > k 0.05 0.95 10);
  Alcotest.(check bool) "higher confidence needs more" true
    (k 0.05 0.99 10 > k 0.05 0.9 10);
  Alcotest.(check bool) "more required hits need more" true
    (k 0.05 0.95 20 > k 0.05 0.95 10);
  (* k must at least cover the c expected hits: k*eps >= c *)
  Alcotest.(check bool) "covers expectation" true
    (float_of_int (k 0.05 0.95 10) *. 0.05 >= 10.)

let test_chernoff_bound_formula () =
  (* Spot-check against a direct evaluation of Theorem 6.1's bound. *)
  let epsilon = 0.05 and confidence = 0.95 and c = 10 in
  let l = log (1. /. (1. -. confidence)) in
  let expected =
    (float_of_int c /. epsilon)
    +. (l /. epsilon)
    +. (Float.sqrt ((l *. l) +. (2. *. float_of_int c *. l)) /. epsilon)
  in
  let k = Stats.chernoff_sample_size ~epsilon ~confidence ~c in
  Alcotest.(check bool) "k just above the bound" true
    (float_of_int k > expected && float_of_int k <= expected +. 2.)

let test_invalid_inputs () =
  Alcotest.check_raises "bad epsilon"
    (Invalid_argument "Stats.z_statistic: epsilon must be in (0,1)") (fun () ->
      ignore (Stats.z_statistic ~p_hat:0.1 ~epsilon:0. ~sample_size:10));
  Alcotest.check_raises "empty sample"
    (Invalid_argument "Stats.z_statistic: sample_size must be positive")
    (fun () -> ignore (Stats.z_statistic ~p_hat:0.1 ~epsilon:0.05 ~sample_size:0))

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone" ~count:200
    QCheck.(pair (float_bound_exclusive 1.) (float_bound_exclusive 1.))
    (fun (p1, p2) ->
      QCheck.assume (p1 > 0. && p2 > 0.);
      let q1 = Stats.normal_quantile p1 and q2 = Stats.normal_quantile p2 in
      if p1 < p2 then q1 <= q2 else if p2 < p1 then q2 <= q1 else true)

let suite =
  [
    Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
    Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
    Alcotest.test_case "quantile inverts cdf" `Quick test_quantile_inverts_cdf;
    Alcotest.test_case "z statistic" `Quick test_z_statistic;
    Alcotest.test_case "accept decision" `Quick test_accept;
    Alcotest.test_case "Chernoff monotonicity" `Quick test_chernoff_monotonicity;
    Alcotest.test_case "Chernoff formula" `Quick test_chernoff_bound_formula;
    Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
  ]
