open Dq_relation

let test_push_get () =
  let v = Vec.create () in
  Alcotest.(check bool) "fresh is empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 0" 0 (Vec.get v 0);
  Alcotest.(check int) "get 99" 99 (Vec.get v 99)

let test_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "negative index" (Invalid_argument "Vec: index -1 out of bounds [0,3)")
    (fun () -> ignore (Vec.get v (-1)));
  Alcotest.check_raises "past end" (Invalid_argument "Vec: index 3 out of bounds [0,3)")
    (fun () -> ignore (Vec.get v 3))

let test_pop_last () =
  let v = Vec.of_list [ "a"; "b" ] in
  Alcotest.(check (option string)) "last" (Some "b") (Vec.last v);
  Alcotest.(check (option string)) "pop" (Some "b") (Vec.pop v);
  Alcotest.(check (option string)) "pop again" (Some "a") (Vec.pop v);
  Alcotest.(check (option string)) "pop empty" None (Vec.pop v)

let test_set_clear () =
  let v = Vec.make 3 0 in
  Vec.set v 1 42;
  Alcotest.(check (list int)) "after set" [ 0; 42; 0 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let test_conversions () =
  let l = [ 5; 1; 4 ] in
  Alcotest.(check (list int)) "list roundtrip" l (Vec.to_list (Vec.of_list l));
  Alcotest.(check (array int)) "array roundtrip" [| 5; 1; 4 |]
    (Vec.to_array (Vec.of_array [| 5; 1; 4 |]))

let test_iterators () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check bool) "exists even" true (Vec.exists (fun x -> x mod 2 = 0) v);
  Alcotest.(check bool) "exists > 5" false (Vec.exists (fun x -> x > 5) v);
  Alcotest.(check (option int)) "find" (Some 2) (Vec.find_opt (fun x -> x mod 2 = 0) v);
  Alcotest.(check (list int)) "map" [ 2; 4; 6; 8 ] (Vec.to_list (Vec.map (( * ) 2) v));
  Alcotest.(check (list int)) "filter" [ 2; 4 ]
    (Vec.to_list (Vec.filter (fun x -> x mod 2 = 0) v));
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  Alcotest.(check int) "iteri count" 4 (List.length !seen)

let test_copy_independent () =
  let v = Vec.of_list [ 1; 2 ] in
  let w = Vec.copy v in
  Vec.push w 3;
  Alcotest.(check int) "original unchanged" 2 (Vec.length v);
  Alcotest.(check int) "copy grew" 3 (Vec.length w)

let test_sort () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Vec.sort Int.compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Vec.to_list v)

let prop_push_pop_roundtrip =
  QCheck.Test.make ~name:"push then pop returns elements LIFO" ~count:200
    QCheck.(list int)
    (fun l ->
      let v = Vec.create () in
      List.iter (Vec.push v) l;
      let popped = List.init (List.length l) (fun _ -> Option.get (Vec.pop v)) in
      popped = List.rev l)

let prop_to_list_preserves_order =
  QCheck.Test.make ~name:"of_list/to_list identity" ~count:200
    QCheck.(list small_int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let suite =
  [
    Alcotest.test_case "push/get" `Quick test_push_get;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "pop/last" `Quick test_pop_last;
    Alcotest.test_case "set/clear" `Quick test_set_clear;
    Alcotest.test_case "conversions" `Quick test_conversions;
    Alcotest.test_case "iterators" `Quick test_iterators;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    Alcotest.test_case "sort" `Quick test_sort;
    QCheck_alcotest.to_alcotest prop_push_pop_roundtrip;
    QCheck_alcotest.to_alcotest prop_to_list_preserves_order;
  ]
