(** Tuples with per-attribute confidence weights.

    Following Section 3.2 of the paper, every attribute [A] of every tuple
    [t] carries a weight [w(t,A)] in [0,1] reflecting the user's confidence
    in the accuracy of [t[A]].  When no weight information is available all
    weights default to 1 and the algorithms fall back to violation counts.

    Tuples carry a stable identifier [tid] so that a tuple can be tracked
    through the repair process even as its values change (Section 3.1). *)

type t

val create : ?weights:float array -> tid:int -> Value.t array -> t
(** [create ~tid values] makes a tuple.  [values] is copied.  [weights]
    defaults to all-1 and must have the same length as [values].
    @raise Invalid_argument on a length mismatch or a weight outside [0,1]. *)

val tid : t -> int

val arity : t -> int

val get : t -> int -> Value.t
(** Value at an attribute position. *)

val set : t -> int -> Value.t -> unit
(** In-place value modification — the repair operation of Section 3.1. *)

val weight : t -> int -> float
(** [w(t,A)] for the attribute at the given position. *)

val set_weight : t -> int -> float -> unit
(** @raise Invalid_argument if the weight is outside [0,1]. *)

val total_weight : t -> float
(** [wt(t)]: the sum of attribute weights, used by W-INCREPAIR's ordering. *)

val values : t -> Value.t array
(** A fresh copy of the value array. *)

val project : t -> int array -> Value.t array
(** Values at the given positions, in order. *)

val copy : ?tid:int -> t -> t
(** Deep copy; optionally renumbered. *)

val equal_values : t -> t -> bool
(** Position-wise strict value equality (weights and tids ignored). *)

val diff_positions : t -> t -> int list
(** Positions at which the two tuples hold different values (strict
    equality), i.e. the attribute-level difference underlying [dif]. *)

val pp : Schema.t -> Format.formatter -> t -> unit
