(** Attribute values.

    The paper's data model (Section 2) treats attribute values as constants
    drawn from attribute domains, plus a distinguished [null] used when a
    repair cannot settle on a certain value (Section 3.1).  We provide typed
    constants (strings, integers, floats) because the experimental [order]
    schema mixes textual and numeric attributes; the cost model (Section 3.2)
    operates on the textual rendering of a value.

    Null semantics follow the paper's remarks in Section 3.1:
    - for tuple-to-tuple comparison, [null] equates with anything
      ({!equal_null_eq});
    - for matching a data tuple against a pattern tuple, [null] matches
      nothing (handled in {!Dq_cfd.Pattern}). *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string

val null : t

val string : string -> t

val int : int -> t

val float : float -> t

val is_null : t -> bool

val equal : t -> t -> bool
(** Strict structural equality; [Null] is only equal to [Null].  [Int] and
    [Float] denoting the same number are distinct values. *)

val equal_null_eq : t -> t -> bool
(** Equality under the simple SQL-style null semantics of Section 3.1:
    evaluates to [true] if either side is [Null], otherwise {!equal}. *)

val compare : t -> t -> int
(** Total order: [Null] first, then constants ordered within and across
    constructors ([Int < Float < String]). *)

val hash : t -> int

val to_string : t -> string
(** Textual rendering used by the cost model and CSV output.  [Null] renders
    as the empty string. *)

val to_display : t -> string
(** Like {!to_string} but renders [Null] as ["⊥"], for human-facing output. *)

val of_string : string -> t
(** Parse a CSV cell: empty string is [Null]; values that read as integers or
    floats become [Int]/[Float]; anything else is a [String]. *)

val pp : Format.formatter -> t -> unit
