let parse_string text =
  let n = String.length text in
  let rows = Vec.create () in
  let row = Vec.create () in
  let cell = Buffer.create 32 in
  let flush_cell () =
    Vec.push row (Buffer.contents cell);
    Buffer.clear cell
  in
  let flush_row () =
    flush_cell ();
    Vec.push rows (Vec.to_list row);
    Vec.clear row
  in
  let rec plain i =
    if i >= n then (if Vec.length row > 0 || Buffer.length cell > 0 then flush_row ())
    else
      match text.[i] with
      | ',' ->
        flush_cell ();
        plain (i + 1)
      | '\n' ->
        flush_row ();
        plain (i + 1)
      | '\r' when i + 1 < n && text.[i + 1] = '\n' ->
        flush_row ();
        plain (i + 2)
      | '"' when Buffer.length cell = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char cell c;
        plain (i + 1)
  and quoted i =
    if i >= n then failwith "Csv.parse_string: unterminated quoted field"
    else
      match text.[i] with
      | '"' when i + 1 < n && text.[i + 1] = '"' ->
        Buffer.add_char cell '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        Buffer.add_char cell c;
        quoted (i + 1)
  in
  plain 0;
  Vec.to_list rows

let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_cell s =
  if needs_quoting s then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let rows_to_string rows =
  let b = Buffer.create 1024 in
  List.iter
    (fun row ->
      Buffer.add_string b (String.concat "," (List.map escape_cell row));
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let load_string ?(name = "R") text =
  match parse_string text with
  | [] -> failwith "Csv.load_string: empty input"
  | header :: data ->
    let schema = Schema.make ~name header in
    let rel = Relation.create schema in
    List.iteri
      (fun line row ->
        if List.length row <> List.length header then
          failwith
            (Printf.sprintf "Csv.load_string: row %d has %d cells, expected %d"
               (line + 2) (List.length row) (List.length header));
        let values = Array.of_list (List.map Value.of_string row) in
        ignore (Relation.insert rel values))
      data;
    rel

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_file ?name path =
  let name =
    match name with
    | Some n -> n
    | None -> Filename.remove_extension (Filename.basename path)
  in
  load_string ~name (read_whole_file path)

let save_string rel =
  let schema = Relation.schema rel in
  let header = Array.to_list (Schema.attributes schema) in
  let rows =
    Relation.fold
      (fun acc t ->
        let cells =
          List.init (Tuple.arity t) (fun i -> Value.to_string (Tuple.get t i))
        in
        cells :: acc)
      [] rel
  in
  rows_to_string (header :: List.rev rows)

let save_file rel path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (save_string rel))
