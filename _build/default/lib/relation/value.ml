type t =
  | Null
  | Int of int
  | Float of float
  | String of string

let null = Null

let string s = String s

let int i = Int i

let float f = Float f

let is_null = function Null -> true | Int _ | Float _ | String _ -> false

let equal v1 v2 =
  match v1, v2 with
  | Null, Null -> true
  | Int i, Int j -> i = j
  | Float f, Float g -> Float.equal f g
  | String s, String t -> String.equal s t
  | (Null | Int _ | Float _ | String _), _ -> false

let equal_null_eq v1 v2 =
  match v1, v2 with
  | Null, _ | _, Null -> true
  | _, _ -> equal v1 v2

let rank = function Null -> 0 | Int _ -> 1 | Float _ -> 2 | String _ -> 3

let compare v1 v2 =
  match v1, v2 with
  | Null, Null -> 0
  | Int i, Int j -> Int.compare i j
  | Float f, Float g -> Float.compare f g
  | String s, String t -> String.compare s t
  | _, _ -> Int.compare (rank v1) (rank v2)

let hash = function
  | Null -> 17
  | Int i -> Hashtbl.hash (1, i)
  | Float f -> Hashtbl.hash (2, f)
  | String s -> Hashtbl.hash (3, s)

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let to_string = function
  | Null -> ""
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | String s -> s

let to_display = function Null -> "\xe2\x8a\xa5" | v -> to_string v

let of_string s =
  if String.equal s "" then Null
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> String s)

let pp ppf v = Format.pp_print_string ppf (to_display v)
