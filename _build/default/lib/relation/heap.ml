type 'a t = (float * 'a) Vec.t

let create () = Vec.create ()

let length = Vec.length

let is_empty = Vec.is_empty

let swap h i j =
  let tmp = Vec.get h i in
  Vec.set h i (Vec.get h j);
  Vec.set h j tmp

let priority h i = fst (Vec.get h i)

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if priority h i < priority h parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let n = Vec.length h in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && priority h l < priority h !smallest then smallest := l;
  if r < n && priority h r < priority h !smallest then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let add h ~priority x =
  Vec.push h (priority, x);
  sift_up h (Vec.length h - 1)

let peek_min h = if Vec.is_empty h then None else Some (Vec.get h 0)

let pop_min h =
  match Vec.length h with
  | 0 -> None
  | 1 -> Vec.pop h
  | n ->
    let min = Vec.get h 0 in
    let last = Vec.get h (n - 1) in
    ignore (Vec.pop h);
    Vec.set h 0 last;
    sift_down h 0;
    Some min

let clear = Vec.clear
