(** Multi-relation databases.

    CFDs constrain one relation at a time (Section 2: "our repairing
    methods are applicable to general relation schemas by repairing each
    relation in isolation"), but the paper's future work — cleaning with
    CFDs {e and} inclusion dependencies — needs several named relations in
    one scope.  A database is a mutable name → relation map with
    deterministic iteration order. *)

type t

val create : unit -> t

val add : t -> Relation.t -> unit
(** Register a relation under its schema's name.
    @raise Invalid_argument if the name is taken. *)

val find : t -> string -> Relation.t option

val find_exn : t -> string -> Relation.t
(** @raise Not_found *)

val mem : t -> string -> bool

val names : t -> string list
(** Registration order. *)

val iter : (Relation.t -> unit) -> t -> unit

val copy : t -> t
(** Deep copy of every relation. *)

val total_cardinality : t -> int
