type t = {
  by_name : (string, Relation.t) Hashtbl.t;
  mutable order : string list; (* reversed registration order *)
}

let create () = { by_name = Hashtbl.create 8; order = [] }

let add db rel =
  let name = Schema.name (Relation.schema rel) in
  if Hashtbl.mem db.by_name name then
    invalid_arg (Printf.sprintf "Database.add: relation %S already present" name);
  Hashtbl.add db.by_name name rel;
  db.order <- name :: db.order

let find db name = Hashtbl.find_opt db.by_name name

let find_exn db name = Hashtbl.find db.by_name name

let mem db name = Hashtbl.mem db.by_name name

let names db = List.rev db.order

let iter f db = List.iter (fun name -> f (find_exn db name)) (names db)

let copy db =
  let db' = create () in
  iter (fun rel -> add db' (Relation.copy rel)) db;
  db'

let total_cardinality db =
  List.fold_left
    (fun acc name -> acc + Relation.cardinality (find_exn db name))
    0 (names db)
