type t = {
  schema : Schema.t;
  by_tid : (int, Tuple.t) Hashtbl.t;
  mutable order : int Vec.t; (* insertion order; may contain deleted tids *)
  mutable deleted : int; (* stale entries in [order], compacted lazily *)
  mutable next_tid : int;
  adom : (Value.t, int ref) Hashtbl.t array; (* per-attribute value counts *)
}

let create schema =
  {
    schema;
    by_tid = Hashtbl.create 64;
    order = Vec.create ();
    deleted = 0;
    next_tid = 0;
    adom = Array.init (Schema.arity schema) (fun _ -> Hashtbl.create 64);
  }

let schema r = r.schema

let cardinality r = Hashtbl.length r.by_tid

let adom_incr r pos v =
  if not (Value.is_null v) then
    match Hashtbl.find_opt r.adom.(pos) v with
    | Some n -> incr n
    | None -> Hashtbl.add r.adom.(pos) v (ref 1)

let adom_decr r pos v =
  if not (Value.is_null v) then
    match Hashtbl.find_opt r.adom.(pos) v with
    | Some n ->
      decr n;
      if !n <= 0 then Hashtbl.remove r.adom.(pos) v
    | None -> ()

let register r t =
  Hashtbl.add r.by_tid (Tuple.tid t) t;
  Vec.push r.order (Tuple.tid t);
  for i = 0 to Tuple.arity t - 1 do
    adom_incr r i (Tuple.get t i)
  done;
  if Tuple.tid t >= r.next_tid then r.next_tid <- Tuple.tid t + 1

let insert ?weights r values =
  if Array.length values <> Schema.arity r.schema then
    invalid_arg "Relation.insert: arity mismatch";
  let t = Tuple.create ?weights ~tid:r.next_tid values in
  register r t;
  t

let add r t =
  if Tuple.arity t <> Schema.arity r.schema then
    invalid_arg "Relation.add: arity mismatch";
  if Hashtbl.mem r.by_tid (Tuple.tid t) then
    invalid_arg (Printf.sprintf "Relation.add: duplicate tid %d" (Tuple.tid t));
  register r t

let compact r =
  (* Drop stale tids from the order vector once they dominate it. *)
  if r.deleted > 32 && r.deleted * 2 > Vec.length r.order then begin
    r.order <- Vec.filter (Hashtbl.mem r.by_tid) r.order;
    r.deleted <- 0
  end

let delete r tid =
  match Hashtbl.find_opt r.by_tid tid with
  | None -> false
  | Some t ->
    for i = 0 to Tuple.arity t - 1 do
      adom_decr r i (Tuple.get t i)
    done;
    Hashtbl.remove r.by_tid tid;
    r.deleted <- r.deleted + 1;
    compact r;
    true

let find r tid = Hashtbl.find_opt r.by_tid tid

let find_exn r tid = Hashtbl.find r.by_tid tid

let mem r tid = Hashtbl.mem r.by_tid tid

let set_value r t pos v =
  (match find r (Tuple.tid t) with
  | Some t' when t' == t -> ()
  | _ -> invalid_arg "Relation.set_value: tuple not in this relation");
  adom_decr r pos (Tuple.get t pos);
  Tuple.set t pos v;
  adom_incr r pos v

let iter f r =
  Vec.iter
    (fun tid ->
      match Hashtbl.find_opt r.by_tid tid with
      | Some t -> f t
      | None -> ())
    r.order

let fold f acc r =
  let acc = ref acc in
  iter (fun t -> acc := f !acc t) r;
  !acc

let to_list r = List.rev (fold (fun acc t -> t :: acc) [] r)

let tuples r =
  let out = Vec.create () in
  iter (Vec.push out) r;
  Vec.to_array out

let active_domain r pos =
  let vals = Hashtbl.fold (fun v _ acc -> v :: acc) r.adom.(pos) [] in
  List.sort Value.compare vals

let active_domain_size r pos = Hashtbl.length r.adom.(pos)

let in_active_domain r pos v = Hashtbl.mem r.adom.(pos) v

let copy r =
  let r' = create r.schema in
  iter (fun t -> add r' (Tuple.copy t)) r;
  r'

let dif d1 d2 =
  let arity = Schema.arity (schema d1) in
  let count = ref 0 in
  iter
    (fun t1 ->
      match find d2 (Tuple.tid t1) with
      | Some t2 -> count := !count + List.length (Tuple.diff_positions t1 t2)
      | None -> count := !count + arity)
    d1;
  iter
    (fun t2 -> if not (mem d1 (Tuple.tid t2)) then count := !count + arity)
    d2;
  !count

let pp ppf r =
  let attrs = Schema.attributes r.schema in
  let rows = tuples r in
  let cell t i = Value.to_display (Tuple.get t i) in
  let widths =
    Array.mapi
      (fun i a ->
        Array.fold_left
          (fun w t -> max w (String.length (cell t i)))
          (String.length a) rows)
      attrs
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%s  | " (pad "tid" 5);
  Array.iteri (fun i a -> Format.fprintf ppf "%s " (pad a widths.(i))) attrs;
  Format.fprintf ppf "@,";
  Array.iter
    (fun t ->
      Format.fprintf ppf "%s  | " (pad (string_of_int (Tuple.tid t)) 5);
      Array.iteri
        (fun i _ -> Format.fprintf ppf "%s " (pad (cell t i) widths.(i)))
        attrs;
      Format.fprintf ppf "@,")
    rows;
  Format.fprintf ppf "@]"
