type t = { tid : int; values : Value.t array; weights : float array }

let check_weight w =
  if not (w >= 0. && w <= 1.) then
    invalid_arg (Printf.sprintf "Tuple: weight %g outside [0,1]" w)

let create ?weights ~tid values =
  let n = Array.length values in
  if n = 0 then invalid_arg "Tuple.create: empty tuple";
  let weights =
    match weights with
    | None -> Array.make n 1.0
    | Some w ->
      if Array.length w <> n then
        invalid_arg "Tuple.create: weights/values length mismatch";
      Array.iter check_weight w;
      Array.copy w
  in
  { tid; values = Array.copy values; weights }

let tid t = t.tid

let arity t = Array.length t.values

let get t i = t.values.(i)

let set t i v = t.values.(i) <- v

let weight t i = t.weights.(i)

let set_weight t i w =
  check_weight w;
  t.weights.(i) <- w

let total_weight t = Array.fold_left ( +. ) 0. t.weights

let values t = Array.copy t.values

let project t positions = Array.map (fun i -> t.values.(i)) positions

let copy ?tid:tid' t =
  {
    tid = (match tid' with Some i -> i | None -> t.tid);
    values = Array.copy t.values;
    weights = Array.copy t.weights;
  }

let equal_values t1 t2 =
  Array.length t1.values = Array.length t2.values
  && Array.for_all2 Value.equal t1.values t2.values

let diff_positions t1 t2 =
  if Array.length t1.values <> Array.length t2.values then
    invalid_arg "Tuple.diff_positions: arity mismatch";
  let out = ref [] in
  for i = Array.length t1.values - 1 downto 0 do
    if not (Value.equal t1.values.(i) t2.values.(i)) then out := i :: !out
  done;
  !out

let pp schema ppf t =
  Format.fprintf ppf "@[<h>#%d(" t.tid;
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%s=%a" (Schema.attribute schema i) Value.pp v)
    t.values;
  Format.fprintf ppf ")@]"
