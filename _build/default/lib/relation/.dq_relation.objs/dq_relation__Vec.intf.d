lib/relation/vec.mli:
