lib/relation/csv.ml: Array Buffer Filename Fun List Printf Relation Schema String Tuple Value Vec
