lib/relation/heap.mli:
