lib/relation/vec.ml: Array List Obj Printf
