lib/relation/database.ml: Hashtbl List Printf Relation Schema
