lib/relation/database.mli: Relation
