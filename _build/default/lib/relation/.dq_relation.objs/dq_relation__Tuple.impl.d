lib/relation/tuple.ml: Array Format Printf Schema Value
