lib/relation/heap.ml: Vec
