(** Minimal RFC-4180-style CSV reading and writing.

    Supports quoted fields containing commas, double quotes (escaped by
    doubling) and newlines, and both LF and CRLF line endings.  Empty cells
    load as {!Value.Null}; numeric-looking cells load as numbers (see
    {!Value.of_string}). *)

val parse_string : string -> string list list
(** Parse CSV text into rows of cells.  A trailing newline does not produce
    an empty row.  @raise Failure on an unterminated quoted field. *)

val escape_cell : string -> string
(** Quote a cell if it contains a comma, quote or newline. *)

val rows_to_string : string list list -> string

val load_string : ?name:string -> string -> Relation.t
(** Build a relation from CSV text whose first row is the header (attribute
    names).  @raise Failure on ragged rows or an empty input. *)

val load_file : ?name:string -> string -> Relation.t

val save_string : Relation.t -> string
(** Render a relation as CSV with a header row. *)

val save_file : Relation.t -> string -> unit
