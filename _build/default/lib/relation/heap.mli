(** Binary min-heaps with explicit float priorities.

    Used for best-first traversal of cluster trees ({!Dq_core.Cluster_index})
    and for cost-ordered candidate selection in the repairing algorithms. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> priority:float -> 'a -> unit
(** Insert an element with the given priority (lower pops first). *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the element with the smallest priority; ties are broken
    arbitrarily. *)

val peek_min : 'a t -> (float * 'a) option

val clear : 'a t -> unit
