(** Relation schemas.

    A schema is a relation name plus an ordered list of attribute names
    ([attr(R)] in the paper).  Attribute positions are the canonical way the
    rest of the library refers to attributes; names are resolved once, at the
    boundary. *)

type t

val make : name:string -> string list -> t
(** [make ~name attrs] builds a schema.
    @raise Invalid_argument on duplicate or empty attribute names. *)

val name : t -> string

val arity : t -> int
(** Number of attributes. *)

val attributes : t -> string array
(** Attribute names in declaration order.  The returned array is fresh. *)

val attribute : t -> int -> string
(** Name of the attribute at a position.  @raise Invalid_argument if out of
    bounds. *)

val position : t -> string -> int option
(** Position of an attribute by name. *)

val position_exn : t -> string -> int
(** @raise Not_found if the attribute does not exist. *)

val mem : t -> string -> bool

val equal : t -> t -> bool
(** Same name, same attributes in the same order. *)

val pp : Format.formatter -> t -> unit
