type t = {
  name : string;
  attrs : string array;
  positions : (string, int) Hashtbl.t;
}

let make ~name attrs =
  let attrs = Array.of_list attrs in
  if Array.length attrs = 0 then
    invalid_arg "Schema.make: a schema needs at least one attribute";
  let positions = Hashtbl.create (Array.length attrs) in
  Array.iteri
    (fun i a ->
      if String.equal a "" then invalid_arg "Schema.make: empty attribute name";
      if Hashtbl.mem positions a then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %S" a);
      Hashtbl.add positions a i)
    attrs;
  { name; attrs; positions }

let name s = s.name

let arity s = Array.length s.attrs

let attributes s = Array.copy s.attrs

let attribute s i =
  if i < 0 || i >= Array.length s.attrs then
    invalid_arg (Printf.sprintf "Schema.attribute: position %d out of bounds" i);
  s.attrs.(i)

let position s a = Hashtbl.find_opt s.positions a

let position_exn s a =
  match position s a with Some i -> i | None -> raise Not_found

let mem s a = Hashtbl.mem s.positions a

let equal s1 s2 =
  String.equal s1.name s2.name
  && Array.length s1.attrs = Array.length s2.attrs
  && Array.for_all2 String.equal s1.attrs s2.attrs

let pp ppf s =
  Format.fprintf ppf "%s(%s)" s.name
    (String.concat ", " (Array.to_list s.attrs))
