type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let make n x = { data = Array.make n x; len = n }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let ensure_capacity v n =
  let cap = Array.length v.data in
  if n > cap then begin
    let new_cap = max n (max 8 (2 * cap)) in
    (* The dummy slot is only used when the vector was empty; it is
       immediately overwritten by the pending push. *)
    let dummy = if v.len > 0 then v.data.(0) else Obj.magic 0 in
    let data = Array.make new_cap dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure_capacity v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let find_opt p v =
  let rec loop i =
    if i >= v.len then None
    else if p v.data.(i) then Some v.data.(i)
    else loop (i + 1)
  in
  loop 0

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let map f v =
  if v.len = 0 then create ()
  else begin
    let data = Array.make v.len (f v.data.(0)) in
    for i = 0 to v.len - 1 do
      data.(i) <- f v.data.(i)
    done;
    { data; len = v.len }
  end

let filter p v =
  let out = create () in
  iter (fun x -> if p x then push out x) v;
  out

let copy v = { data = Array.copy v.data; len = v.len }

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
