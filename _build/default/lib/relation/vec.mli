(** Growable arrays.

    OCaml 5.1 does not ship [Dynarray]; relations, dirty-tuple queues and
    cluster trees all need an amortised O(1) append structure, so we provide
    one.  Indices are dense: [0 .. length v - 1]. *)

type 'a t

val create : unit -> 'a t
(** A fresh empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element.  @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set v i x] replaces the [i]-th element.  @raise Invalid_argument if out
    of bounds. *)

val push : 'a t -> 'a -> unit
(** Append one element at the end. *)

val pop : 'a t -> 'a option
(** Remove and return the last element, or [None] if empty. *)

val last : 'a t -> 'a option
(** The last element without removing it. *)

val clear : 'a t -> unit
(** Remove all elements (keeps the backing storage). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val find_opt : ('a -> bool) -> 'a t -> 'a option

val map : ('a -> 'b) -> 'a t -> 'b t

val filter : ('a -> bool) -> 'a t -> 'a t

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val to_array : 'a t -> 'a array

val of_array : 'a array -> 'a t

val copy : 'a t -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort. *)
