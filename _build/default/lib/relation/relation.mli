(** In-memory relation instances.

    A relation owns a set of {!Tuple.t}s over a fixed {!Schema.t}, assigns
    stable tuple identifiers, and maintains per-attribute active domains
    ([adom(A,D)], Section 2 of the paper) incrementally.  Active domains are
    the value pools repairs draw from: the algorithms never invent new
    constants (Section 3.1).

    Value updates must go through {!set_value} so the active-domain index
    stays consistent; mutating a member tuple directly with {!Tuple.set}
    bypasses the index and is unsupported. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t

val cardinality : t -> int

val insert : ?weights:float array -> t -> Value.t array -> Tuple.t
(** Insert a row with a fresh tid and return the stored tuple. *)

val add : t -> Tuple.t -> unit
(** Insert a tuple preserving its tid (used to move tuples between the dirty
    database and a repair under construction).  The tuple is stored by
    reference.  @raise Invalid_argument if the tid is already present or the
    arity does not match the schema. *)

val delete : t -> int -> bool
(** Delete by tid; returns whether the tuple was present. *)

val find : t -> int -> Tuple.t option
(** Look up by tid. *)

val find_exn : t -> int -> Tuple.t

val mem : t -> int -> bool

val set_value : t -> Tuple.t -> int -> Value.t -> unit
(** Modify one attribute value in place, keeping active domains current.
    The tuple must belong to this relation. *)

val iter : (Tuple.t -> unit) -> t -> unit
(** Iterate in insertion order. *)

val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc

val to_list : t -> Tuple.t list

val tuples : t -> Tuple.t array
(** Snapshot of the current tuples in insertion order. *)

val active_domain : t -> int -> Value.t list
(** Distinct non-null values of the attribute at a position, in an
    unspecified but deterministic order. *)

val active_domain_size : t -> int -> int

val in_active_domain : t -> int -> Value.t -> bool

val copy : t -> t
(** Deep copy: fresh tuples (same tids), fresh indexes. *)

val dif : t -> t -> int
(** [dif d1 d2] counts attribute-level differences between tuples paired by
    tid (strict value equality), plus [arity] for every tid present in
    exactly one of the two — the difference measure of Section 1/3.3. *)

val pp : Format.formatter -> t -> unit
(** Render as an aligned table (for examples and debugging). *)
