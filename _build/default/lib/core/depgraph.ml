open Dq_cfd

(* Tarjan's strongly-connected-components algorithm, iterative-friendly
   sizes here (attribute counts are tiny), so the recursive form is fine. *)
let scc ~n ~edges =
  let adj = Array.make n [] in
  List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) edges;
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp = Array.make n (-1) in
  let comps = ref [] in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (* Tarjan emits components in reverse topological order; [comps] collected
     by consing is therefore in topological order: sources get low ids. *)
  List.iteri (fun i members -> List.iter (fun v -> comp.(v) <- i) members) !comps;
  comp

let strata schema sigma =
  let n = Dq_relation.Schema.arity schema in
  let edges =
    Array.to_list sigma
    |> List.concat_map (fun cfd ->
           let rhs = Cfd.rhs cfd in
           Array.to_list (Cfd.lhs cfd) |> List.map (fun b -> (b, rhs)))
  in
  let comp = scc ~n ~edges in
  Array.map (fun cfd -> comp.(Cfd.rhs cfd)) sigma
