lib/core/depgraph.ml: Array Cfd Dq_cfd Dq_relation List
