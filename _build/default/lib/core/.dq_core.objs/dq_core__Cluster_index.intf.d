lib/core/cluster_index.mli: Dq_relation Relation Value
