lib/core/inc_repair.ml: Dq_cfd Dq_relation Float Format Hashtbl Int List Relation Tuple Tuple_resolve Unix Value Violation
