lib/core/ind_repair.ml: Array Batch_repair Cost Database Dq_cfd Dq_relation Format Ind List Printf Relation Schema Tuple Unix Value Violation Vkey
