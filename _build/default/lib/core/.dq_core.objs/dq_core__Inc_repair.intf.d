lib/core/inc_repair.mli: Dq_cfd Dq_relation Format Relation Tuple
