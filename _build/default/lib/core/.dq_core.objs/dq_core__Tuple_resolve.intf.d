lib/core/tuple_resolve.mli: Dq_cfd Dq_relation Relation Tuple
