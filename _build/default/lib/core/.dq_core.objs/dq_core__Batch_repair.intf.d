lib/core/batch_repair.mli: Cfd Dq_cfd Dq_relation Format Relation
