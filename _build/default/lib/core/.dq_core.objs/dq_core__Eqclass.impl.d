lib/core/eqclass.ml: Dq_relation Format Hashtbl List Printf Value
