lib/core/depgraph.mli: Dq_cfd Dq_relation
