lib/core/stats.mli:
