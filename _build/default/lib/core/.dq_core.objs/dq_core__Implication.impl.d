lib/core/implication.ml: Array Cfd Dq_cfd Dq_relation Fun Hashtbl List Option Pattern Printf Schema Value
