lib/core/batch_repair.ml: Array Cfd Cost Depgraph Dq_cfd Dq_relation Eqclass Format Hashtbl Heap List Logs Option Pattern Relation Schema Sys Tuple Unix Value Vkey
