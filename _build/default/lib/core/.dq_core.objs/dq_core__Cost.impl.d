lib/core/cost.ml: Array Dq_relation List Relation String Tuple Value
