lib/core/implication.mli: Dq_cfd Dq_relation Schema Value
