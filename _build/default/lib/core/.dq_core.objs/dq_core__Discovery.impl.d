lib/core/discovery.ml: Array Cfd Dq_cfd Dq_relation Fun Hashtbl Int List Pattern Printf Relation Schema String Tuple Value Vkey
