lib/core/stats.ml: Array Float
