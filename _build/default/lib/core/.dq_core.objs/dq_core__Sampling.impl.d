lib/core/sampling.ml: Array Cost Dq_cfd Dq_relation Float Format Hashtbl Int List Printf Relation Reservoir Stats String Tuple Violation
