lib/core/sampling.mli: Dq_cfd Dq_relation Format Relation Tuple
