lib/core/framework.mli: Dq_cfd Dq_relation Inc_repair Relation Sampling Tuple
