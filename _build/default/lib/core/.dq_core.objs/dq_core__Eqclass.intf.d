lib/core/eqclass.mli: Dq_relation Format Value
