lib/core/framework.ml: Batch_repair Dq_cfd Dq_relation Fun Inc_repair List Relation Sampling Tuple
