lib/core/cost.mli: Dq_relation Relation Tuple Value
