lib/core/reservoir.mli:
