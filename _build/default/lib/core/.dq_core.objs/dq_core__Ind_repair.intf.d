lib/core/ind_repair.mli: Database Dq_cfd Dq_relation Format
