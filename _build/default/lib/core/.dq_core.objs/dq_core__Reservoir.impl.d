lib/core/reservoir.ml: Dq_relation List Random Vec
