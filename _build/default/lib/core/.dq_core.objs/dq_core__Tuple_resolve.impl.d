lib/core/tuple_resolve.ml: Array Cfd Cluster_index Cost Dq_cfd Dq_relation Int Lhs_index List Relation Schema Tuple Value
