lib/core/discovery.mli: Dq_cfd Dq_relation Relation Schema
