lib/core/cluster_index.ml: Cost Dq_relation Heap List Relation String Value
