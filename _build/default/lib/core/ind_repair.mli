(** Repairing with CFDs {e and} inclusion dependencies — the paper's future
    work ("we are investigating effective methods for improving the
    consistency and accuracy of the data based on both CFDs and inclusion
    dependencies"), following the repair moves of Bohannon et al. [5].

    The algorithm interleaves, for a bounded number of rounds:

    + per-relation CFD repair (BATCHREPAIR);
    + IND resolution: each dangling reference is either {e redirected} to
      the nearest existing referenced key (Damerau–Levenshtein cost over
      the key attributes, weighted by the referencing cells' confidence)
      or {e satisfied by insertion} of a new referenced tuple carrying the
      key and nulls elsewhere — whichever is cheaper.

    Each move is one of the paper's repair primitives (value modification;
    tuple insertion, which is sound for INDs though not for CFDs), and
    inserted nulls are exempt from both constraint classes, so rounds
    monotonically shrink the violation set in the common case.  Like
    everything else in this repo the combination is heuristic: the final
    database is re-checked and the outcome reported rather than assumed. *)

open Dq_relation

type config = {
  max_rounds : int;  (** CFD/IND interleavings (default 4) *)
  insertion_cost_per_null : float;
      (** cost charged per null attribute of an inserted referenced tuple,
          traded against the cost of redirecting the reference
          (default 0.5) *)
  max_key_scan : int;
      (** candidate referenced keys examined per dangling reference when
          searching for the nearest redirect target (default 4096) *)
}

val default_config : ?max_rounds:int -> ?insertion_cost_per_null:float -> unit -> config

type stats = {
  rounds : int;
  cells_modified : int;  (** via CFD repair and redirects *)
  tuples_inserted : int;
  cfds_satisfied : bool;  (** final check *)
  inds_satisfied : bool;  (** final check *)
  runtime : float;
}

val pp_stats : Format.formatter -> stats -> unit

val repair :
  ?config:config ->
  Database.t ->
  cfds:(string * Dq_cfd.Cfd.t array) list ->
  inds:Dq_cfd.Ind.t list ->
  Database.t * stats
(** Repair a copy of the database against per-relation CFD sets and
    cross-relation INDs.  Relations named in [cfds] or [inds] must exist.
    @raise Invalid_argument otherwise. *)
