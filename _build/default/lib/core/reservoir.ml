open Dq_relation

type 'a t = { slots : 'a Vec.t; capacity : int; mutable seen : int; rng : Random.State.t }

let create ?(seed = 42) capacity =
  if capacity < 0 then invalid_arg "Reservoir.create: negative capacity";
  {
    slots = Vec.create ();
    capacity;
    seen = 0;
    rng = Random.State.make [| seed |];
  }

let add r x =
  r.seen <- r.seen + 1;
  if Vec.length r.slots < r.capacity then Vec.push r.slots x
  else if r.capacity > 0 then begin
    let j = Random.State.int r.rng r.seen in
    if j < r.capacity then Vec.set r.slots j x
  end

let seen r = r.seen

let contents r = Vec.to_list r.slots

let sample_list ?seed k l =
  let r = create ?seed k in
  List.iter (add r) l;
  contents r
