open Dq_relation
open Dq_cfd

exception Budget_exceeded

(* ---- syntactic subsumption ------------------------------------------- *)

let subsumes psi phi =
  Cfd.rhs psi = Cfd.rhs phi
  && Cfd.lhs psi = Cfd.lhs phi
  && Pattern.equal (Cfd.rhs_pattern psi) (Cfd.rhs_pattern phi)
  && Array.for_all2
       (fun p_psi p_phi -> Pattern.subsumes p_phi p_psi)
       (Cfd.lhs_patterns psi) (Cfd.lhs_patterns phi)

(* ---- refutation search ------------------------------------------------ *)

(* Candidate values per attribute: constants mentioned anywhere in Σ ∪ {φ}
   at that position, plus two fresh values (two, so a wildcard-RHS
   violation can give the two tuples distinct "don't care" values). *)
let domains schema sigma phi =
  let arity = Schema.arity schema in
  let consts = Array.init arity (fun _ -> ref []) in
  let note pos = function
    | Pattern.Wild -> ()
    | Pattern.Const v ->
      if not (List.exists (Value.equal v) !(consts.(pos))) then
        consts.(pos) := v :: !(consts.(pos))
  in
  let note_clause c =
    Array.iteri
      (fun i pos -> note pos (Cfd.lhs_patterns c).(i))
      (Cfd.lhs c);
    note (Cfd.rhs c) (Cfd.rhs_pattern c)
  in
  Array.iter note_clause sigma;
  note_clause phi;
  Array.mapi
    (fun pos cs ->
      let fresh k =
        let rec pick i =
          let v = Value.string (Printf.sprintf "#fresh%d.%d" k i) in
          if List.exists (Value.equal v) !cs then pick (i + 1) else v
        in
        pick pos
      in
      fresh 1 :: fresh 2 :: List.rev !cs)
    consts

(* One constraint over a pair of tuples; [check] is called once all the
   positions it reads are assigned (values are never null here). *)
type constr = { reads : (int * int) list (* (tuple index, position) *); check : Value.t array -> Value.t array -> bool }

let tuple_satisfies_constant c which =
  let lhs = Cfd.lhs c and pats = Cfd.lhs_patterns c in
  let a =
    match Cfd.rhs_pattern c with
    | Pattern.Const a -> a
    | Pattern.Wild -> assert false
  in
  {
    reads =
      List.map (fun pos -> (which, pos)) (Array.to_list lhs)
      @ [ (which, Cfd.rhs c) ];
    check =
      (fun t1 t2 ->
        let t = if which = 0 then t1 else t2 in
        let matches =
          let rec loop i =
            i >= Array.length lhs
            || (Pattern.matches t.(lhs.(i)) pats.(i) && loop (i + 1))
          in
          loop 0
        in
        (not matches) || Value.equal t.(Cfd.rhs c) a);
  }

let pair_satisfies_wild c =
  let lhs = Cfd.lhs c and pats = Cfd.lhs_patterns c in
  let reads =
    List.concat_map
      (fun pos -> [ (0, pos); (1, pos) ])
      (Array.to_list lhs @ [ Cfd.rhs c ])
  in
  {
    reads;
    check =
      (fun t1 t2 ->
        let joint_match =
          let rec loop i =
            i >= Array.length lhs
            || (Value.equal t1.(lhs.(i)) t2.(lhs.(i))
                && Pattern.matches t1.(lhs.(i)) pats.(i)
                && loop (i + 1))
          in
          loop 0
        in
        (not joint_match) || Value.equal t1.(Cfd.rhs c) t2.(Cfd.rhs c));
  }

(* Goal constraints: the pair must violate φ. *)
let violation_goals phi ~pair =
  let lhs = Cfd.lhs phi and pats = Cfd.lhs_patterns phi in
  let lhs_match which =
    {
      reads = List.map (fun pos -> (which, pos)) (Array.to_list lhs);
      check =
        (fun t1 t2 ->
          let t = if which = 0 then t1 else t2 in
          let rec loop i =
            i >= Array.length lhs
            || (Pattern.matches t.(lhs.(i)) pats.(i) && loop (i + 1))
          in
          loop 0);
    }
  in
  match Cfd.rhs_pattern phi with
  | Pattern.Const a ->
    [
      lhs_match 0;
      {
        reads = [ (0, Cfd.rhs phi) ];
        check = (fun t1 _ -> not (Value.equal t1.(Cfd.rhs phi) a));
      };
    ]
  | Pattern.Wild ->
    assert pair;
    [
      lhs_match 0;
      lhs_match 1;
      {
        reads =
          List.concat_map (fun pos -> [ (0, pos); (1, pos) ]) (Array.to_list lhs);
        check =
          (fun t1 t2 ->
            Array.for_all (fun pos -> Value.equal t1.(pos) t2.(pos)) lhs);
      };
      {
        reads = [ (0, Cfd.rhs phi); (1, Cfd.rhs phi) ];
        check = (fun t1 t2 -> not (Value.equal t1.(Cfd.rhs phi) t2.(Cfd.rhs phi)));
      };
    ]

let counterexample ?(node_budget = 200_000) schema sigma phi =
  let arity = Schema.arity schema in
  let pair = not (Cfd.is_constant phi) in
  let doms = domains schema sigma phi in
  let constants = Array.to_list sigma |> List.filter Cfd.is_constant in
  let wilds = Array.to_list sigma |> List.filter (fun c -> not (Cfd.is_constant c)) in
  let constraints =
    List.concat_map
      (fun c ->
        if pair then [ tuple_satisfies_constant c 0; tuple_satisfies_constant c 1 ]
        else [ tuple_satisfies_constant c 0 ])
      constants
    @ (if pair then List.map pair_satisfies_wild wilds else [])
    @ violation_goals phi ~pair
  in
  (* Assignment order: φ's attributes first (they are the most
     constrained), then the rest; tuple 0 before tuple 1 per attribute. *)
  let attr_order =
    let phi_attrs = Cfd.attrs phi in
    phi_attrs @ List.filter (fun p -> not (List.mem p phi_attrs)) (List.init arity Fun.id)
  in
  let slots =
    (* (tuple index, position) in assignment order *)
    List.concat_map
      (fun pos -> if pair then [ (0, pos); (1, pos) ] else [ (0, pos) ])
      attr_order
  in
  let slot_index = Hashtbl.create 64 in
  List.iteri (fun i slot -> Hashtbl.add slot_index slot i) slots;
  (* For each constraint, the assignment step after which it is decidable. *)
  let ready = Array.make (List.length slots) [] in
  List.iter
    (fun c ->
      let last =
        List.fold_left
          (fun acc read -> max acc (Hashtbl.find slot_index read))
          0 c.reads
      in
      ready.(last) <- c :: ready.(last))
    constraints;
  let t1 = Array.make arity Value.null and t2 = Array.make arity Value.null in
  let nodes = ref 0 in
  let slots = Array.of_list slots in
  let rec assign step =
    if step >= Array.length slots then true
    else begin
      let which, pos = slots.(step) in
      let target = if which = 0 then t1 else t2 in
      List.exists
        (fun v ->
          incr nodes;
          if !nodes > node_budget then raise Budget_exceeded;
          target.(pos) <- v;
          List.for_all (fun c -> c.check t1 t2) ready.(step) && assign (step + 1))
        doms.(pos)
    end
  in
  if assign 0 then
    if pair then Some (Array.copy t1, Array.copy t2)
    else Some (Array.copy t1, Array.copy t1)
  else None

let implies ?node_budget schema sigma phi =
  Option.is_none (counterexample ?node_budget schema sigma phi)

let minimize ?node_budget schema sigma =
  let clauses = Array.to_list sigma in
  let keep = Array.make (List.length clauses) true in
  List.iteri
    (fun i phi ->
      let others =
        List.filteri (fun j _ -> j <> i && keep.(j)) clauses
      in
      let implied =
        List.exists (fun psi -> subsumes psi phi) others
        ||
        match implies ?node_budget schema (Array.of_list others) phi with
        | implied -> implied
        | exception Budget_exceeded -> false
      in
      if implied then keep.(i) <- false)
    clauses;
  Cfd.number (List.filteri (fun i _ -> keep.(i)) clauses)
