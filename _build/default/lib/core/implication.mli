(** Implication analysis for CFDs — the companion reasoning machinery of
    the CFD paper [6] that Section 2 relies on ("satisfiability and
    implication analyses of CFDs").

    [Σ ⊨ φ] holds iff every instance satisfying Σ also satisfies φ.
    Implication lets a cleaning pipeline drop redundant clauses before
    repair (every pattern row is a constraint, and mined or hand-written
    tableaus often overlap) and answer "is this new rule already
    enforced?" during the user-feedback loop.

    The decision procedure is a refutation search, sound and complete for
    the normal form used here: to check [Σ ⊨ (X → A, tp)], search for a
    one- or two-tuple counterexample instance over the finite value space
    of constants mentioned in Σ ∪ {φ} plus fresh values (two tuples
    suffice because a CFD violation involves at most two tuples).  Like
    satisfiability this is exponential in the schema width in the worst
    case, and polynomial for a fixed schema. *)

open Dq_relation

exception Budget_exceeded
(** The refutation search gives up after [node_budget] assignments — wide
    schemas with large pattern vocabularies can defeat it. *)

val implies :
  ?node_budget:int -> Schema.t -> Dq_cfd.Cfd.t array -> Dq_cfd.Cfd.t -> bool
(** [implies schema sigma phi] decides [Σ ⊨ φ].  An unsatisfiable Σ
    implies everything, vacuously.  @raise Budget_exceeded when the search
    exhausts [node_budget] (default 200,000) nodes undecided. *)

val counterexample :
  ?node_budget:int ->
  Schema.t ->
  Dq_cfd.Cfd.t array ->
  Dq_cfd.Cfd.t ->
  (Value.t array * Value.t array) option
(** A one- or two-tuple witness: both tuples satisfy Σ (they may be the
    same tuple for a constant-RHS φ) while jointly violating φ.
    @raise Budget_exceeded as above. *)

val subsumes : Dq_cfd.Cfd.t -> Dq_cfd.Cfd.t -> bool
(** Cheap syntactic sufficient condition: [subsumes psi phi] implies
    [{psi} ⊨ phi] (same embedded FD, ψ's LHS patterns at least as general,
    identical RHS patterns — a more specific row is implied by a more
    general one). *)

val minimize : ?node_budget:int -> Schema.t -> Dq_cfd.Cfd.t array -> Dq_cfd.Cfd.t array
(** A cover of Σ: clauses implied by the remaining ones are dropped
    (greedy, first-to-last; syntactic subsumption first, refutation search
    second, keeping the clause when the budget runs out), then the
    survivors are renumbered.  The result implies the same constraints. *)
