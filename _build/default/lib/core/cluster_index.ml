open Dq_relation

type node =
  | Leaf of { text : string; value : Value.t }
  | Branch of { rep : string; left : node; right : node }

type t = { root : node option; size : int }

let distance = Cost.dl_distance

(* Farthest-point seeds: start from the first element, walk to the element
   farthest from it, then take the element farthest from that one. *)
let pick_seeds texts =
  let farthest_from s =
    fst
      (List.fold_left
         (fun (best, d) t ->
           let d' = distance s t in
           if d' > d then (t, d') else (best, d))
         (s, -1) texts)
  in
  match texts with
  | [] | [ _ ] -> None
  | first :: _ ->
    let a = farthest_from first in
    let b = farthest_from a in
    if String.equal a b then None else Some (a, b)

let rec build_node items =
  match items with
  | [] -> assert false
  | [ (text, value) ] -> Leaf { text; value }
  | _ -> (
    let texts = List.map fst items in
    match pick_seeds texts with
    | Some (a, b) when not (String.equal a b) ->
      let near_a, near_b =
        List.partition (fun (t, _) -> distance t a <= distance t b) items
      in
      if near_a = [] || near_b = [] then split_half items a
      else
        Branch { rep = a; left = build_node near_a; right = build_node near_b }
    | _ ->
      (* all values equidistant (or identical): split arbitrarily *)
      split_half items (fst (List.hd items)))

and split_half items rep =
  let n = List.length items in
  let left = List.filteri (fun i _ -> i < n / 2) items in
  let right = List.filteri (fun i _ -> i >= n / 2) items in
  Branch { rep; left = build_node left; right = build_node right }

let build values =
  let items =
    values
    |> List.filter (fun v -> not (Value.is_null v))
    |> List.sort_uniq Value.compare
    |> List.map (fun v -> (Value.to_string v, v))
  in
  match items with
  | [] -> { root = None; size = 0 }
  | _ -> { root = Some (build_node items); size = List.length items }

let of_attribute rel pos = build (Relation.active_domain rel pos)

let size t = t.size

let iter_nearest t query f =
  (* Best-first search; [f] returns [true] to stop. *)
  match t.root with
  | None -> ()
  | Some root ->
    let q = Value.to_string query in
    let heap = Heap.create () in
    let push node =
      let d =
        match node with
        | Leaf { text; _ } -> distance q text
        | Branch { rep; _ } -> distance q rep
      in
      Heap.add heap ~priority:(float_of_int d) node
    in
    push root;
    let rec drain () =
      match Heap.pop_min heap with
      | None -> ()
      | Some (_, Leaf { value; _ }) -> if not (f value) then drain ()
      | Some (_, Branch { left; right; _ }) ->
        push left;
        push right;
        drain ()
    in
    drain ()

let nearest t query ~k =
  let out = ref [] in
  let count = ref 0 in
  iter_nearest t query (fun v ->
      out := v :: !out;
      incr count;
      !count >= k);
  List.rev !out

let find_first t query pred =
  let found = ref None in
  iter_nearest t query (fun v ->
      if pred v then begin
        found := Some v;
        true
      end
      else false);
  !found
