(** TUPLERESOLVE (Section 5.1, Figure 7): repair a single tuple against a
    clean relation.

    Given the current repair [Repr] (clean) and a tuple [t] to insert,
    greedily pick the best set [C] of at most [k] attributes and values
    [v̂] over [adom(Repr) ∪ {null}] such that [Repr ∪ {t[C/v̂]}] satisfies
    every clause whose attributes are all fixed, minimising

    {v costfix(C, v̂) = cost(t, t[C/v̂]) · (1 + vio(t[C/v̂])) v}

    then freeze [C] and repeat until every attribute is fixed.  (The paper
    multiplies by [vio] alone; we add 1 so that among violation-free
    candidates the cheaper change still wins rather than all tying at 0.)

    Optimizations from Section 5.2 are built in: LHS-indices answer the
    satisfaction and [vio] checks in O(|Σ|), and cost-based cluster indices
    ({!Cluster_index}) propose candidate values near the current one.
    Attributes mentioned in no violated clause are frozen immediately at
    zero cost, so clean tuples resolve in O(|Σ|). *)

open Dq_relation

type env
(** Shared state for resolving a stream of tuples against a growing repair:
    the repair relation, its LHS-indices, and per-attribute cluster
    indices. *)

val make_env :
  ?k:int ->
  ?max_candidates:int ->
  ?use_cluster_index:bool ->
  Relation.t ->
  Dq_cfd.Cfd.t array ->
  env
(** [make_env repr sigma] builds the environment.  [k] (default 2) is the
    number of attributes fixed per greedy step; [max_candidates] (default
    6) caps candidate values per attribute; [use_cluster_index] (default
    true) toggles the cost-based index (the ablation of DESIGN.md §5.2). *)

val register : env -> Tuple.t -> unit
(** Record a tuple that has been added to the repair, keeping the
    LHS-indices current ([Repr] grows tuple by tuple in INCREPAIR). *)

val resolve : env -> Tuple.t -> Tuple.t
(** A repaired copy of the tuple (same tid and weights) such that adding it
    to the environment's relation keeps it clean. *)

val vio_against : env -> Tuple.t -> int
(** How many clauses the tuple would violate against the current repair —
    exposed for orderings and diagnostics. *)
