(** The cost model of Section 3.2.

    The cost of changing an attribute value [v] to [v'] is

    {v cost(v,v') = w(t,A) · dis(v,v') / max(|v|,|v'|) v}

    where [dis] is the Damerau–Levenshtein distance on the textual rendering
    of the values and [w(t,A)] the confidence weight carried by the tuple.
    Dividing by the longer length makes longer strings that differ by one
    character closer than shorter ones.

    Nulls render as the empty string, so changing a value to [null] costs
    the full weight [w(t,A)] and [cost(null, null) = 0]. *)

open Dq_relation

val dl_distance : string -> string -> int
(** Restricted Damerau–Levenshtein (optimal string alignment) distance:
    minimum number of single-character insertions, deletions, substitutions
    and adjacent transpositions. *)

val value_distance : Value.t -> Value.t -> int
(** [dl_distance] on {!Value.to_string} renderings. *)

val similarity : Value.t -> Value.t -> float
(** [dis(v,v') / max(|v|,|v'|)], in [0,1]; [0] when both are empty/null. *)

val change : weight:float -> Value.t -> Value.t -> float
(** [cost(v,v')] for an attribute carrying the given weight. *)

val tuple_change : original:Tuple.t -> repaired:Tuple.t -> float
(** Sum of [cost] over the attributes where the two tuples differ; weights
    are taken from the original tuple. *)

val repair_cost : original:Relation.t -> repair:Relation.t -> float
(** [cost(Repr, D)]: total change cost over tuples paired by tid.  Tuples
    present in only one relation are ignored (repairs by value modification
    preserve tids). *)
