(* Abramowitz & Stegun 7.1.26: erf via a degree-5 polynomial in
   1/(1+0.3275911 x); |error| < 1.5e-7 — ample for test thresholds. *)
let erf x =
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let a1 = 0.254829592 and a2 = -0.284496736 and a3 = 1.421413741 in
  let a4 = -1.453152027 and a5 = 1.061405429 and p = 0.3275911 in
  let t = 1. /. (1. +. (p *. x)) in
  let poly = ((((((a5 *. t) +. a4) *. t +. a3) *. t +. a2) *. t) +. a1) *. t in
  sign *. (1. -. (poly *. exp (-.(x *. x))))

let normal_cdf x = 0.5 *. (1. +. erf (x /. Float.sqrt 2.))

(* Acklam's inverse-normal rational approximation, then one Halley
   refinement step using the CDF above. *)
let normal_quantile p =
  if not (p > 0. && p < 1.) then
    invalid_arg "Stats.normal_quantile: p must be in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let horner coeffs x =
    Array.fold_left (fun acc coef -> (acc *. x) +. coef) 0. coeffs
  in
  let p_low = 0.02425 in
  let tail q sign =
    sign *. horner c q /. ((horner d q *. q) +. 1.)
  in
  let x =
    if p < p_low then tail (Float.sqrt (-2. *. log p)) 1.
    else if p > 1. -. p_low then tail (Float.sqrt (-2. *. log (1. -. p))) (-1.)
    else begin
      let q = p -. 0.5 in
      let r = q *. q in
      horner a r *. q /. ((horner b r *. r) +. 1.)
    end
  in
  (* One Halley step: sharpen x against the CDF. *)
  let e = normal_cdf x -. p in
  let u = e *. Float.sqrt (2. *. Float.pi) *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))

let z_statistic ~p_hat ~epsilon ~sample_size =
  if not (epsilon > 0. && epsilon < 1.) then
    invalid_arg "Stats.z_statistic: epsilon must be in (0,1)";
  if sample_size <= 0 then
    invalid_arg "Stats.z_statistic: sample_size must be positive";
  (p_hat -. epsilon)
  /. Float.sqrt (epsilon *. (1. -. epsilon) /. float_of_int sample_size)

let critical_value ~confidence = normal_quantile confidence

let accept ~p_hat ~epsilon ~confidence ~sample_size =
  z_statistic ~p_hat ~epsilon ~sample_size <= -.critical_value ~confidence

let chernoff_sample_size ~epsilon ~confidence ~c =
  if not (epsilon > 0. && epsilon < 1.) then
    invalid_arg "Stats.chernoff_sample_size: epsilon must be in (0,1)";
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Stats.chernoff_sample_size: confidence must be in (0,1)";
  if c < 0 then invalid_arg "Stats.chernoff_sample_size: c must be >= 0";
  let cf = float_of_int c in
  let l = log (1. /. (1. -. confidence)) in
  let k =
    (cf /. epsilon)
    +. (l /. epsilon)
    +. (Float.sqrt ((l *. l) +. (2. *. cf *. l)) /. epsilon)
  in
  int_of_float (Float.ceil k) + 1
