(** Reservoir sampling (Vitter's Algorithm R [33]): draw a uniform sample of
    fixed size from a stream in one pass and constant space — how the
    sampling module draws from each stratum. *)

type 'a t

val create : ?seed:int -> int -> 'a t
(** [create k] prepares a reservoir of capacity [k].
    @raise Invalid_argument if [k < 0]. *)

val add : 'a t -> 'a -> unit
(** Offer one stream element. *)

val seen : 'a t -> int
(** Number of elements offered so far. *)

val contents : 'a t -> 'a list
(** The current sample, in an unspecified order; at most [k] elements, and
    exactly [min k (seen t)]. *)

val sample_list : ?seed:int -> int -> 'a list -> 'a list
(** One-shot convenience: a uniform sample of size [min k (length l)]. *)
