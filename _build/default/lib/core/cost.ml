open Dq_relation

(* Optimal-string-alignment variant of Damerau-Levenshtein: three rolling
   rows of the dynamic program suffice because transpositions only look two
   rows back. *)
let dl_distance s t =
  let m = String.length s and n = String.length t in
  if m = 0 then n
  else if n = 0 then m
  else begin
    let prev2 = Array.make (n + 1) 0 in
    let prev = Array.init (n + 1) (fun j -> j) in
    let curr = Array.make (n + 1) 0 in
    for i = 1 to m do
      curr.(0) <- i;
      for j = 1 to n do
        let substitution_cost = if s.[i - 1] = t.[j - 1] then 0 else 1 in
        let best =
          min
            (min (prev.(j) + 1) (curr.(j - 1) + 1))
            (prev.(j - 1) + substitution_cost)
        in
        let best =
          if
            i > 1 && j > 1
            && s.[i - 1] = t.[j - 2]
            && s.[i - 2] = t.[j - 1]
          then min best (prev2.(j - 2) + 1)
          else best
        in
        curr.(j) <- best
      done;
      Array.blit prev 0 prev2 0 (n + 1);
      Array.blit curr 0 prev 0 (n + 1)
    done;
    prev.(n)
  end

let value_distance v v' = dl_distance (Value.to_string v) (Value.to_string v')

let similarity v v' =
  let s = Value.to_string v and s' = Value.to_string v' in
  let longer = max (String.length s) (String.length s') in
  if longer = 0 then 0.
  else float_of_int (dl_distance s s') /. float_of_int longer

let change ~weight v v' = weight *. similarity v v'

let tuple_change ~original ~repaired =
  List.fold_left
    (fun acc pos ->
      acc
      +. change
           ~weight:(Tuple.weight original pos)
           (Tuple.get original pos) (Tuple.get repaired pos))
    0.
    (Tuple.diff_positions original repaired)

let repair_cost ~original ~repair =
  Relation.fold
    (fun acc t ->
      match Relation.find repair (Tuple.tid t) with
      | Some t' -> acc +. tuple_change ~original:t ~repaired:t'
      | None -> acc)
    0. original
