(** Statistics for the accuracy guarantee of Section 6.

    The sampling module tests the null hypothesis "the proportion of
    inaccurate data in the repair is at least ε" with a one-sided z-test:

    {v z = (p̂ − ε) / sqrt(ε(1−ε)/k) v}

    and rejects it (i.e. declares the repair accurate enough) when
    [z ≤ −z_α] at confidence level δ, where [α = 1 − δ].  Theorem 6.1's
    Chernoff bound sizes the sample so that, with probability ≥ δ, at
    least [c] inaccurate tuples land in the sample when the true rate is ε
    — i.e. a failure of the bound is actually observable. *)

val normal_cdf : float -> float
(** Φ(x), standard normal CDF (Abramowitz–Stegun 7.1.26 approximation of
    erf; absolute error < 1.5e-7). *)

val normal_quantile : float -> float
(** Φ⁻¹(p) for p in (0,1) (Acklam's rational approximation, refined with
    one Halley step; relative error below 1e-9).
    @raise Invalid_argument outside (0,1). *)

val z_statistic : p_hat:float -> epsilon:float -> sample_size:int -> float
(** The test statistic above.  @raise Invalid_argument if [epsilon] is not
    in (0,1) or the sample is empty. *)

val critical_value : confidence:float -> float
(** [z_α] with [α = 1 − confidence], i.e. [Φ⁻¹(confidence)]. *)

val accept : p_hat:float -> epsilon:float -> confidence:float -> sample_size:int -> bool
(** Whether the one-sided test rejects the null hypothesis — accepting the
    repair as having inaccuracy rate below ε at the given confidence. *)

val chernoff_sample_size : epsilon:float -> confidence:float -> c:int -> int
(** Theorem 6.1: the smallest [k] such that a random sample of size [k]
    contains at least [c] inaccurate tuples with probability ≥ δ, when the
    true inaccuracy rate is ε. *)
