(** Cost-based indices (Section 5.2): active-domain values of an attribute
    arranged in a cluster tree so that candidate repair values can be
    enumerated in (approximately) increasing Damerau–Levenshtein distance
    from a query value.

    The paper builds the tree with hierarchical agglomerative clustering;
    we use the standard top-down bisecting variant (two farthest-point
    seeds, partition by nearest seed, recurse), which produces the same
    kind of similarity hierarchy in O(n log n) distance computations
    instead of O(n²).  Lookups run best-first over the tree, keyed by the
    distance from the query to each cluster's representative, so the
    enumeration order is approximate — exactly what a candidate-value
    heuristic needs. *)

open Dq_relation

type t

val build : Value.t list -> t
(** Cluster the given (non-null, deduplicated) values. *)

val of_attribute : Relation.t -> int -> t
(** [build] on the active domain of an attribute. *)

val size : t -> int

val nearest : t -> Value.t -> k:int -> Value.t list
(** Up to [k] values, in approximately increasing distance from the query;
    the query itself is included if present in the domain. *)

val find_first : t -> Value.t -> (Value.t -> bool) -> Value.t option
(** The first value satisfying the predicate, enumerating nearest-first. *)
