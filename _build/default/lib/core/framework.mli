(** The data-cleaning framework of Figure 3, wiring the three modules
    together: repair → stratified sampling → user feedback → repair again.

    Each round produces a candidate repair, asks the (possibly simulated)
    user to inspect a stratified sample, and stops when the statistical
    test accepts the repair's accuracy.  Otherwise the user's corrections
    are written back into the working database (with full-confidence
    weights, so later rounds keep them) and the user may also revise the
    CFD set before the next round. *)

open Dq_relation

type user = {
  inspect : Tuple.t -> Tuple.t option;
      (** [None]: the repaired tuple is accurate; [Some fixed]: it is not,
          and [fixed] holds the values the user wants *)
  revise_cfds : Dq_cfd.Cfd.t array -> Dq_cfd.Cfd.t array;
      (** the user's ΔΣ: the chance to add or amend constraints between
          rounds (identity for a passive user) *)
}

val passive_user : (Tuple.t -> Tuple.t option) -> user
(** A user that inspects but never edits the CFDs. *)

type algorithm = Batch | Incremental of Inc_repair.ordering

type round_log = {
  round : int;  (** 1-based *)
  report : Sampling.report;
  corrections : int;  (** sample tuples the user fixed this round *)
}

type outcome = {
  repair : Relation.t;
  sigma : Dq_cfd.Cfd.t array;  (** possibly user-revised *)
  rounds : round_log list;  (** in round order *)
  accepted : bool;  (** whether the final round passed the test *)
}

val clean :
  ?max_rounds:int ->
  ?seed:int ->
  ?algorithm:algorithm ->
  sampling:Sampling.config ->
  user:user ->
  Relation.t ->
  Dq_cfd.Cfd.t array ->
  outcome
(** Run the loop for at most [max_rounds] (default 5) rounds.  The input
    database is not modified. *)
