open Dq_relation

let schema =
  Schema.make ~name:"order"
    [
      "id"; "name"; "PR"; "AC"; "PN"; "STR"; "CT"; "ST"; "zip"; "CTY"; "VAT";
      "TT"; "QTT";
    ]

let pos = Schema.position_exn schema

let id = pos "id"

let name = pos "name"

let pr = pos "PR"

let ac = pos "AC"

let pn = pos "PN"

let str = pos "STR"

let ct = pos "CT"

let st = pos "ST"

let zip = pos "zip"

let cty = pos "CTY"

let vat = pos "VAT"

let tt = pos "TT"

let qtt = pos "QTT"
