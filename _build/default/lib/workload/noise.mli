(** Noise injection (Section 7.1).

    Starting from a clean [Dopt], a fraction ρ of tuples is dirtied so that
    {e every dirty tuple violates at least one CFD}.  An attribute is
    corrupted either by a typo — a new value 1–6 Damerau–Levenshtein edits
    away — or by swapping in an existing value from another tuple.  The mix
    of violations is steerable between {e constant} CFDs (single-tuple
    violations, e.g. a wrong city for a known zip) and {e variable} CFDs
    (pair violations, e.g. two orders of one item with different prices),
    which drives Figures 14 and 15.

    Weights follow the paper's model: corrupted cells draw
    [w ∈ [0, a]], clean cells [w ∈ [b, 1]] (defaults a = 0.6, b = 0.5);
    setting [weighted:false] leaves every weight at 1 (the "no weight
    information" configuration). *)

open Dq_relation

type params = {
  rate : float;  (** ρ: fraction of tuples dirtied *)
  constant_share : float;
      (** fraction of dirty tuples aimed at constant-CFD violations *)
  typo_share : float;  (** typo vs. value-swap corruption mix *)
  max_attrs : int;  (** attributes corrupted per dirty tuple (1..) *)
  weight_a : float;  (** upper bound for dirty-cell weights *)
  weight_b : float;  (** lower bound for clean-cell weights *)
  weighted : bool;
  seed : int;
}

val default_params : ?rate:float -> ?constant_share:float -> ?seed:int -> unit -> params
(** ρ = 0.05, constant share 0.5, typo share 0.5, ≤ 2 attributes per dirty
    tuple, a = 0.6, b = 0.5, weighted. *)

type info = {
  dirty : Relation.t;  (** D: the noisy database (tids match [Dopt]) *)
  dirty_tids : int list;
  dirtied_cells : (int * int) list;  (** (tid, attribute position) *)
}

val inject : params -> Datagen.dataset -> info
(** Corrupt a copy of the dataset's [Dopt].  Guarantees every dirtied tuple
    violates ≥ 1 clause of Σ (checked against the clean database via
    LHS-indices; corruption is retried, falling back to a guaranteed
    constant-CFD violation). *)

val typo : Random.State.t -> string -> string
(** A corrupted copy of the string, 1–6 single-character edits away
    (never equal to the input). *)
