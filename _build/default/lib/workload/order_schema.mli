(** The experimental schema of Section 7.1: the [order] relation of
    Figure 1 extended with country [CTY], tax rate [VAT], item title [TT]
    and quantity [QTT] — 13 attributes in all. *)

open Dq_relation

val schema : Schema.t

(** Attribute positions, resolved once. *)

val id : int

val name : int

val pr : int

val ac : int

val pn : int

val str : int

val ct : int

val st : int

val zip : int

val cty : int

val vat : int

val tt : int

val qtt : int
