(** Synthetic dataset generation mirroring Section 7.1.

    [generate] builds a clean database [Dopt] drawn from an entity world
    ({!Entities}) together with the seven-CFD constraint set Σ the paper's
    experiments use:

    - φ1: [AC,PN] → [STR,CT,ST]  (Fig. 1, with per-area-code pattern rows)
    - φ2: [zip] → [CT,ST]        (Fig. 1, with per-zip pattern rows)
    - φ3: [id] → [name,PR]       (Fig. 2, plus per-item constant rows)
    - φ4: [CT,STR] → [zip]       (Fig. 2)
    - φ5: [ST] → [VAT]           (constant rows: tax rate per state)
    - φ6: [CT,ST] → [AC]         (new, cyclic with φ1)
    - φ7: [AC] → [ST]            (new, cyclic with φ6)

    [tableau_coverage] controls how many entities are enshrined as
    constant pattern rows — the paper's tableaus carried 300–5,000 pattern
    tuples.  [Dopt |= Σ] holds by construction and is asserted in tests. *)

open Dq_relation
open Dq_cfd

type params = {
  n_tuples : int;
  n_cities : int;
  n_streets_per_city : int;
  n_items : int;
  n_customers : int;
  tableau_coverage : float;  (** fraction of entities given constant rows *)
  seed : int;
}

val default_params : ?n_tuples:int -> ?seed:int -> unit -> params
(** 60 cities × 8 streets, 300 items, 2,000 customers, coverage 0.8. *)

type dataset = {
  world : Entities.world;
  dopt : Relation.t;  (** the clean database; [dopt |= sigma] *)
  sigma : Cfd.t array;  (** numbered normal-form clauses *)
  tableaus : Cfd.Tableau.t list;  (** the user-facing CFDs *)
}

val generate : params -> dataset

val pattern_row_count : dataset -> int
(** Total pattern tuples across the tableaus (each is a constraint). *)
