(** Repair-quality metrics (Section 7.1, "Measuring repair quality").

    Computed cell-by-cell over the three aligned databases (clean [Dopt],
    noisy [D], repair [Repr], paired by tid):

    - a {e noise} is a cell where [D ≠ Dopt];
    - a {e change} is a cell where [D ≠ Repr];
    - a change is {e correct} if it restores the clean value, or replaces a
      noisy value by [null] (the paper counts nulling a wrong value as a
      correction and nulling a correct value as an error);
    - {e precision} = correct changes / changes (repair correctness);
    - {e recall} = corrected noises / noises (repair completeness). *)

open Dq_relation

type t = {
  noises : int;
  changes : int;
  correct_changes : int;
  corrected_noises : int;
  precision : float;  (** in [0,1]; 1 when nothing was changed *)
  recall : float;  (** in [0,1]; 1 when there was no noise *)
  f1 : float;
}

val evaluate : dopt:Relation.t -> dirty:Relation.t -> repair:Relation.t -> t

val pp : Format.formatter -> t -> unit
