(** The master entity model behind the synthetic [order] data.

    The paper populated its table by scraping real sales/address data; we
    substitute a deterministic world model that yields the same constraint
    structure (DESIGN.md, substitutions): states carry tax rates, each
    city belongs to one state and owns one area code and a set of streets,
    each street one globally unique zip; items have fixed names, prices
    and titles; customers are unique (area code, phone) pairs bound to one
    address.  Any database drawn from this world satisfies all seven CFDs
    of {!Datagen} by construction. *)

type street = { street_name : string; zip : string }

type city = {
  city_name : string;
  state : string;
  area_code : string;
  streets : street array;
}

type item = { item_id : string; item_name : string; price : string; title : string }

type customer = {
  cust_ac : string;
  cust_pn : string;
  cust_street : street;
  cust_city : city;
}

type world = {
  states : (string * string) array;  (** (state code, VAT rate) *)
  cities : city array;
  items : item array;
  customers : customer array;
}

val vat_of : world -> string -> string
(** Tax rate of a state code.  @raise Not_found for an unknown state. *)

val generate :
  ?seed:int ->
  n_cities:int ->
  n_streets_per_city:int ->
  n_items:int ->
  n_customers:int ->
  unit ->
  world
(** Build a world.  Deterministic for a given seed.  City names, area
    codes and zips are globally unique; customers are unique by
    (area code, phone number). *)
