open Dq_relation
open Dq_cfd

type params = {
  rate : float;
  constant_share : float;
  typo_share : float;
  max_attrs : int;
  weight_a : float;
  weight_b : float;
  weighted : bool;
  seed : int;
}

let default_params ?(rate = 0.05) ?(constant_share = 0.5) ?(seed = 11) () =
  {
    rate;
    constant_share;
    typo_share = 0.5;
    max_attrs = 2;
    weight_a = 0.6;
    weight_b = 0.5;
    weighted = true;
    seed;
  }

type info = {
  dirty : Relation.t;
  dirty_tids : int list;
  dirtied_cells : (int * int) list;
}

let typo rng s =
  let s = if String.equal s "" then "x" else s in
  let edits = 1 + Random.State.int rng 6 in
  let random_char () = Char.chr (Char.code 'a' + Random.State.int rng 26) in
  let edit b =
    let n = Bytes.length b in
    match Random.State.int rng 4 with
    | 0 ->
      (* substitute *)
      let i = Random.State.int rng n in
      Bytes.set b i (random_char ());
      b
    | 1 ->
      (* insert *)
      let i = Random.State.int rng (n + 1) in
      let nb = Bytes.create (n + 1) in
      Bytes.blit b 0 nb 0 i;
      Bytes.set nb i (random_char ());
      Bytes.blit b i nb (i + 1) (n - i);
      nb
    | 2 when n > 1 ->
      (* delete *)
      let i = Random.State.int rng n in
      let nb = Bytes.create (n - 1) in
      Bytes.blit b 0 nb 0 i;
      Bytes.blit b (i + 1) nb i (n - i - 1);
      nb
    | _ when n > 1 ->
      (* transpose *)
      let i = Random.State.int rng (n - 1) in
      let c = Bytes.get b i in
      Bytes.set b i (Bytes.get b (i + 1));
      Bytes.set b (i + 1) c;
      b
    | _ ->
      Bytes.set b 0 (random_char ());
      b
  in
  let rec attempt tries =
    let b = ref (Bytes.of_string s) in
    for _ = 1 to edits do
      b := edit !b
    done;
    let out = Bytes.to_string !b in
    if String.equal out s && tries > 0 then attempt (tries - 1)
    else if String.equal out s then s ^ "x"
    else out
  in
  attempt 8

(* Per-clause key multiplicities over the clean data: a variable-CFD pair
   violation needs a partner sharing the LHS key. *)
let key_counts sigma dopt =
  Array.map
    (fun cfd ->
      if Cfd.is_constant cfd then None
      else begin
        let table = Vkey.Table.create 256 in
        Relation.iter
          (fun t ->
            if Cfd.applies_lhs cfd t then begin
              let key = Cfd.lhs_key cfd t in
              let n =
                match Vkey.Table.find_opt table key with
                | Some n -> n
                | None -> 0
              in
              Vkey.Table.replace table key (n + 1)
            end)
          dopt;
        Some table
      end)
    sigma

let corrupt_value rng params dirty attr ~avoid current =
  let current_s = Value.to_string current in
  let fresh v =
    (not (Value.is_null v))
    && (not (Value.equal v current))
    && not (List.exists (Value.equal v) avoid)
  in
  let swap () =
    let adom = Relation.active_domain dirty attr in
    let n = List.length adom in
    if n = 0 then None
    else begin
      let start = Random.State.int rng n in
      let arr = Array.of_list adom in
      let rec search i =
        if i >= n then None
        else
          let v = arr.((start + i) mod n) in
          if fresh v then Some v else search (i + 1)
      in
      search 0
    end
  in
  let make_typo () =
    let rec attempt tries =
      if tries = 0 then None
      else
        let v = Value.of_string (typo rng current_s) in
        if fresh v then Some v else attempt (tries - 1)
    in
    attempt 8
  in
  let primary, secondary =
    if Random.State.float rng 1.0 < params.typo_share then (make_typo, swap)
    else (swap, make_typo)
  in
  match primary () with Some v -> Some v | None -> secondary ()

let inject params ds =
  if not (params.rate >= 0. && params.rate <= 1.) then
    invalid_arg "Noise.inject: rate must be in [0,1]";
  if params.max_attrs < 1 then
    invalid_arg "Noise.inject: max_attrs must be >= 1";
  let rng = Random.State.make [| params.seed |] in
  let dirty = Relation.copy ds.Datagen.dopt in
  let sigma = ds.Datagen.sigma in
  let counts = key_counts sigma ds.Datagen.dopt in
  let arity = Schema.arity (Relation.schema dirty) in
  let tids = Array.map Tuple.tid (Relation.tuples dirty) in
  (* Fisher-Yates prefix shuffle to pick dirty tuples without replacement. *)
  let n = Array.length tids in
  let n_dirty =
    min n (int_of_float (Float.round (params.rate *. float_of_int n)))
  in
  for i = 0 to n_dirty - 1 do
    let j = i + Random.State.int rng (n - i) in
    let tmp = tids.(i) in
    tids.(i) <- tids.(j);
    tids.(j) <- tmp
  done;
  let dirtied = ref [] in
  let dirty_tids = ref [] in
  let apply t attr v =
    Relation.set_value dirty t attr v;
    dirtied := (Tuple.tid t, attr) :: !dirtied
  in
  (* Corrupt the RHS of a clause that provably applies to [t]; returns the
     clause on success so extra corruption can avoid its attributes. *)
  let violate_constant t =
    let applicable =
      Array.to_list sigma
      |> List.filter (fun cfd -> Cfd.is_constant cfd && Cfd.applies_lhs cfd t)
    in
    match applicable with
    | [] -> None
    | _ ->
      let cfd = List.nth applicable (Random.State.int rng (List.length applicable)) in
      let attr = Cfd.rhs cfd in
      let avoid =
        match Cfd.rhs_pattern cfd with
        | Pattern.Const c -> [ c ]
        | Pattern.Wild -> []
      in
      (match corrupt_value rng params dirty attr ~avoid (Tuple.get t attr) with
      | Some v ->
        apply t attr v;
        Some cfd
      | None -> None)
  in
  let violate_variable t =
    let candidates =
      Array.to_list sigma
      |> List.filter (fun cfd ->
             (not (Cfd.is_constant cfd))
             && Cfd.applies_lhs cfd t
             &&
             match counts.(Cfd.id cfd) with
             | Some table -> (
               match Vkey.Table.find_opt table (Cfd.lhs_key cfd t) with
               | Some n -> n >= 2
               | None -> false)
             | None -> false)
    in
    match candidates with
    | [] -> None
    | _ ->
      let cfd = List.nth candidates (Random.State.int rng (List.length candidates)) in
      let attr = Cfd.rhs cfd in
      (match corrupt_value rng params dirty attr ~avoid:[] (Tuple.get t attr) with
      | Some v ->
        apply t attr v;
        Some cfd
      | None -> None)
  in
  for i = 0 to n_dirty - 1 do
    let t = Relation.find_exn dirty tids.(i) in
    let want_constant = Random.State.float rng 1.0 < params.constant_share in
    let primary =
      if want_constant then
        match violate_constant t with None -> violate_variable t | some -> some
      else
        match violate_variable t with None -> violate_constant t | some -> some
    in
    match primary with
    | None -> () (* no clause applies at all: leave the tuple clean *)
    | Some cfd ->
      dirty_tids := Tuple.tid t :: !dirty_tids;
      (* Extra corruption outside the violated clause's attributes, so the
         guaranteed violation survives. *)
      let extra = Random.State.int rng params.max_attrs in
      let clause_attrs = Cfd.attrs cfd in
      for _ = 1 to extra do
        let attr = Random.State.int rng arity in
        if
          (not (List.mem attr clause_attrs))
          && not (List.mem (Tuple.tid t, attr) !dirtied)
        then
          match
            corrupt_value rng params dirty attr ~avoid:[] (Tuple.get t attr)
          with
          | Some v -> apply t attr v
          | None -> ()
      done
  done;
  (* Weight model: corrupted cells get w ∈ [0,a], clean cells w ∈ [b,1]. *)
  if params.weighted then begin
    let dirtied_set = Hashtbl.create 256 in
    List.iter (fun cell -> Hashtbl.replace dirtied_set cell ()) !dirtied;
    Relation.iter
      (fun t ->
        for attr = 0 to arity - 1 do
          let w =
            if Hashtbl.mem dirtied_set (Tuple.tid t, attr) then
              Random.State.float rng params.weight_a
            else
              params.weight_b
              +. Random.State.float rng (1. -. params.weight_b)
          in
          Tuple.set_weight t attr w
        done)
      dirty
  end;
  { dirty; dirty_tids = List.rev !dirty_tids; dirtied_cells = List.rev !dirtied }
