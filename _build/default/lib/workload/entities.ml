type street = { street_name : string; zip : string }

type city = {
  city_name : string;
  state : string;
  area_code : string;
  streets : street array;
}

type item = { item_id : string; item_name : string; price : string; title : string }

type customer = {
  cust_ac : string;
  cust_pn : string;
  cust_street : street;
  cust_city : city;
}

type world = {
  states : (string * string) array;
  cities : city array;
  items : item array;
  customers : customer array;
}

let state_pool =
  [|
    ("NY", "8.5"); ("PA", "6.0"); ("CA", "7.25"); ("TX", "6.25"); ("IL", "6.25");
    ("WA", "6.5"); ("MA", "6.25"); ("FL", "6.0"); ("OH", "5.75"); ("GA", "4.0");
    ("NJ", "6.625"); ("VA", "5.3"); ("MI", "6.0"); ("NC", "4.75"); ("AZ", "5.6");
    ("TN", "7.0"); ("IN", "7.0"); ("MO", "4.225"); ("MD", "6.0"); ("WI", "5.0");
  |]

let city_pool =
  [|
    "NYC"; "PHI"; "LA"; "Houston"; "Chicago"; "Seattle"; "Boston"; "Miami";
    "Columbus"; "Atlanta"; "Newark"; "Richmond"; "Detroit"; "Charlotte";
    "Phoenix"; "Memphis"; "Indy"; "StLouis"; "Baltimore"; "Madison";
    "Albany"; "Pittsburgh"; "Fresno"; "Austin"; "Peoria"; "Tacoma";
    "Salem"; "Orlando"; "Dayton"; "Savannah"; "Trenton"; "Norfolk";
    "Lansing"; "Durham"; "Tucson"; "Knoxville"; "Gary"; "Springfield";
    "Rockville"; "Racine";
  |]

let street_pool =
  [|
    "Walnut"; "Spruce"; "Canel"; "Broad"; "Oak"; "Maple"; "Cedar"; "Pine";
    "Elm"; "Main"; "Market"; "Chestnut"; "High"; "Park"; "Lake"; "Hill";
    "River"; "Church"; "Union"; "Mill"; "Bridge"; "Grove"; "Sunset"; "Forest";
  |]

let item_name_pool =
  [|
    "H. Porter"; "J. Denver"; "Snow White"; "War and Peace"; "OCaml Handbook";
    "Desk Lamp"; "Tea Kettle"; "Notebook"; "Fountain Pen"; "Road Atlas";
    "Chess Set"; "Wool Scarf"; "Rain Jacket"; "Field Guide"; "Star Chart";
    "Coffee Mug"; "Puzzle Box"; "Alarm Clock"; "Hand Drill"; "Paint Set";
  |]

let title_pool =
  [| "book"; "toy"; "tool"; "apparel"; "kitchen"; "media"; "office"; "garden" |]

let pick pool i =
  let base = pool.(i mod Array.length pool) in
  if i < Array.length pool then base
  else Printf.sprintf "%s%d" base (i / Array.length pool)

let vat_of world st =
  let rec search i =
    if i >= Array.length world.states then raise Not_found
    else
      let code, rate = world.states.(i) in
      if String.equal code st then rate else search (i + 1)
  in
  search 0

let generate ?(seed = 7) ~n_cities ~n_streets_per_city ~n_items ~n_customers
    () =
  if n_cities <= 0 || n_streets_per_city <= 0 || n_items <= 0 || n_customers <= 0
  then invalid_arg "Entities.generate: all sizes must be positive";
  let rng = Random.State.make [| seed |] in
  let next_zip = ref 10000 in
  let cities =
    Array.init n_cities (fun i ->
        let state, _ = state_pool.(i mod Array.length state_pool) in
        let streets =
          Array.init n_streets_per_city (fun j ->
              let zip = string_of_int !next_zip in
              incr next_zip;
              { street_name = pick street_pool ((i * 3) + j); zip })
        in
        {
          city_name = pick city_pool i;
          state;
          area_code = string_of_int (200 + i);
          streets;
        })
  in
  let items =
    Array.init n_items (fun i ->
        {
          item_id = Printf.sprintf "a%d" (100 + i);
          item_name = pick item_name_pool i;
          price = Printf.sprintf "%d.%02d" (1 + Random.State.int rng 99)
              (Random.State.int rng 100);
          title = title_pool.(i mod Array.length title_pool);
        })
  in
  (* Customers: unique (AC, PN); phone numbers unique within a city. *)
  let customers =
    Array.init n_customers (fun i ->
        let city = cities.(Random.State.int rng n_cities) in
        let street = city.streets.(Random.State.int rng n_streets_per_city) in
        {
          cust_ac = city.area_code;
          cust_pn = Printf.sprintf "%07d" (1000000 + i);
          cust_street = street;
          cust_city = city;
        })
  in
  {
    states = Array.sub state_pool 0 (min n_cities (Array.length state_pool));
    cities;
    items;
    customers;
  }
