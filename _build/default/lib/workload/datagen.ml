open Dq_relation
open Dq_cfd

type params = {
  n_tuples : int;
  n_cities : int;
  n_streets_per_city : int;
  n_items : int;
  n_customers : int;
  tableau_coverage : float;
  seed : int;
}

(* Entity pools grow with the data so that group multiplicities (orders per
   customer, tuples per street) stay in a realistic band instead of every
   group swelling linearly with |D|. *)
let default_params ?(n_tuples = 10_000) ?(seed = 7) () =
  {
    n_tuples;
    n_cities = max 20 (n_tuples / 80);
    n_streets_per_city = 8;
    n_items = max 60 (n_tuples / 16);
    n_customers = max 250 (n_tuples * 2 / 5);
    tableau_coverage = 0.8;
    seed;
  }

type dataset = {
  world : Entities.world;
  dopt : Relation.t;
  sigma : Cfd.t array;
  tableaus : Cfd.Tableau.t list;
}

let wild = Pattern.Wild

let const s = Pattern.const (Value.of_string s)

let covered coverage i total =
  (* Deterministic coverage: the first [coverage]·total entities get
     constant pattern rows. *)
  float_of_int i < (coverage *. float_of_int total) -. 1e-9

let tableaus_of_world ~coverage (world : Entities.world) =
  let n_cities = Array.length world.cities in
  let city_rows f =
    Array.to_list world.cities
    |> List.filteri (fun i _ -> covered coverage i n_cities)
    |> List.map f
  in
  let phi1 =
    Cfd.Tableau.
      {
        name = "phi1";
        lhs_attrs = [ "AC"; "PN" ];
        rhs_attrs = [ "STR"; "CT"; "ST" ];
        rows =
          { lhs = [ wild; wild ]; rhs = [ wild; wild; wild ] }
          :: city_rows (fun (c : Entities.city) ->
                 Cfd.Tableau.
                   {
                     lhs = [ const c.area_code; wild ];
                     rhs = [ wild; const c.city_name; const c.state ];
                   });
      }
  in
  let phi2 =
    let zip_rows =
      Array.to_list world.cities
      |> List.concat_map (fun (c : Entities.city) ->
             Array.to_list c.streets |> List.map (fun s -> (c, s)))
      |> fun pairs ->
      let total = List.length pairs in
      List.filteri (fun i _ -> covered coverage i total) pairs
      |> List.map (fun ((c : Entities.city), (s : Entities.street)) ->
             Cfd.Tableau.
               {
                 lhs = [ const s.zip ];
                 rhs = [ const c.city_name; const c.state ];
               })
    in
    Cfd.Tableau.
      {
        name = "phi2";
        lhs_attrs = [ "zip" ];
        rhs_attrs = [ "CT"; "ST" ];
        rows = { lhs = [ wild ]; rhs = [ wild; wild ] } :: zip_rows;
      }
  in
  let phi3 =
    let n_items = Array.length world.items in
    let item_rows =
      Array.to_list world.items
      |> List.filteri (fun i _ -> covered coverage i n_items)
      |> List.map (fun (it : Entities.item) ->
             Cfd.Tableau.
               {
                 lhs = [ const it.item_id ];
                 rhs = [ const it.item_name; const it.price ];
               })
    in
    Cfd.Tableau.
      {
        name = "phi3";
        lhs_attrs = [ "id" ];
        rhs_attrs = [ "name"; "PR" ];
        rows = { lhs = [ wild ]; rhs = [ wild; wild ] } :: item_rows;
      }
  in
  let phi4 = Cfd.Tableau.fd ~name:"phi4" ~lhs:[ "CT"; "STR" ] ~rhs:[ "zip" ] in
  let phi5 =
    Cfd.Tableau.
      {
        name = "phi5";
        lhs_attrs = [ "ST" ];
        rhs_attrs = [ "VAT" ];
        rows =
          Array.to_list world.states
          |> List.map (fun (st, rate) ->
                 Cfd.Tableau.{ lhs = [ const st ]; rhs = [ const rate ] });
      }
  in
  let phi6 =
    Cfd.Tableau.
      {
        name = "phi6";
        lhs_attrs = [ "CT"; "ST" ];
        rhs_attrs = [ "AC" ];
        rows =
          { lhs = [ wild; wild ]; rhs = [ wild ] }
          :: city_rows (fun (c : Entities.city) ->
                 Cfd.Tableau.
                   {
                     lhs = [ const c.city_name; const c.state ];
                     rhs = [ const c.area_code ];
                   });
      }
  in
  let phi7 =
    Cfd.Tableau.
      {
        name = "phi7";
        lhs_attrs = [ "AC" ];
        rhs_attrs = [ "ST" ];
        rows =
          { lhs = [ wild ]; rhs = [ wild ] }
          :: city_rows (fun (c : Entities.city) ->
                 Cfd.Tableau.
                   { lhs = [ const c.area_code ]; rhs = [ const c.state ] });
      }
  in
  [ phi1; phi2; phi3; phi4; phi5; phi6; phi7 ]

let generate params =
  if params.n_tuples <= 0 then
    invalid_arg "Datagen.generate: n_tuples must be positive";
  if not (params.tableau_coverage >= 0. && params.tableau_coverage <= 1.) then
    invalid_arg "Datagen.generate: tableau_coverage must be in [0,1]";
  let world =
    Entities.generate ~seed:params.seed ~n_cities:params.n_cities
      ~n_streets_per_city:params.n_streets_per_city ~n_items:params.n_items
      ~n_customers:params.n_customers ()
  in
  let rng = Random.State.make [| params.seed + 1 |] in
  let dopt = Relation.create Order_schema.schema in
  for _ = 1 to params.n_tuples do
    let customer =
      world.customers.(Random.State.int rng (Array.length world.customers))
    in
    let item = world.items.(Random.State.int rng (Array.length world.items)) in
    let city = customer.cust_city in
    let street = customer.cust_street in
    let values = Array.make (Schema.arity Order_schema.schema) Value.null in
    let set pos s = values.(pos) <- Value.of_string s in
    set Order_schema.id item.item_id;
    set Order_schema.name item.item_name;
    set Order_schema.pr item.price;
    set Order_schema.ac customer.cust_ac;
    set Order_schema.pn customer.cust_pn;
    set Order_schema.str street.street_name;
    set Order_schema.ct city.city_name;
    set Order_schema.st city.state;
    set Order_schema.zip street.zip;
    set Order_schema.cty "US";
    set Order_schema.vat (Entities.vat_of world city.state);
    set Order_schema.tt item.title;
    set Order_schema.qtt (string_of_int (1 + Random.State.int rng 9));
    ignore (Relation.insert dopt values)
  done;
  let tableaus = tableaus_of_world ~coverage:params.tableau_coverage world in
  let sigma =
    Cfd.number
      (List.concat_map (Cfd.normalize Order_schema.schema) tableaus)
  in
  { world; dopt; sigma; tableaus }

let pattern_row_count ds =
  List.fold_left
    (fun acc (tab : Cfd.Tableau.t) ->
      acc + max 1 (List.length tab.Cfd.Tableau.rows))
    0 ds.tableaus
