open Dq_relation

type t = {
  noises : int;
  changes : int;
  correct_changes : int;
  corrected_noises : int;
  precision : float;
  recall : float;
  f1 : float;
}

let evaluate ~dopt ~dirty ~repair =
  let arity = Schema.arity (Relation.schema dirty) in
  let noises = ref 0 in
  let changes = ref 0 in
  let correct_changes = ref 0 in
  let corrected_noises = ref 0 in
  Relation.iter
    (fun td ->
      let tid = Tuple.tid td in
      match Relation.find dopt tid, Relation.find repair tid with
      | Some to_, Some tr ->
        for attr = 0 to arity - 1 do
          let d = Tuple.get td attr in
          let o = Tuple.get to_ attr in
          let r = Tuple.get tr attr in
          let noisy = not (Value.equal d o) in
          let changed = not (Value.equal d r) in
          (* Nulling a wrong value counts as a correction; nulling a right
             one as an error. *)
          let fixed = Value.equal r o || (Value.is_null r && noisy) in
          if noisy then incr noises;
          if changed then begin
            incr changes;
            if fixed then incr correct_changes
          end;
          if noisy && fixed then incr corrected_noises
        done
      | _, _ -> ())
    dirty;
  let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den in
  let precision = ratio !correct_changes !changes in
  let recall = ratio !corrected_noises !noises in
  let f1 =
    if precision +. recall = 0. then 0.
    else 2. *. precision *. recall /. (precision +. recall)
  in
  {
    noises = !noises;
    changes = !changes;
    correct_changes = !correct_changes;
    corrected_noises = !corrected_noises;
    precision;
    recall;
    f1;
  }

let pp ppf m =
  Format.fprintf ppf
    "@[<h>noises=%d changes=%d correct=%d precision=%.1f%% recall=%.1f%% \
     f1=%.1f%%@]"
    m.noises m.changes m.correct_changes (100. *. m.precision)
    (100. *. m.recall) (100. *. m.f1)
