lib/workload/datagen.ml: Array Cfd Dq_cfd Dq_relation Entities List Order_schema Pattern Random Relation Schema Value
