lib/workload/datagen.mli: Cfd Dq_cfd Dq_relation Entities Relation
