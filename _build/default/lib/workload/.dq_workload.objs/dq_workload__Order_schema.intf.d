lib/workload/order_schema.mli: Dq_relation Schema
