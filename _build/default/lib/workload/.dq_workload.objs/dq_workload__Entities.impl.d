lib/workload/entities.ml: Array Printf Random String
