lib/workload/noise.ml: Array Bytes Cfd Char Datagen Dq_cfd Dq_relation Float Hashtbl List Pattern Random Relation Schema String Tuple Value Vkey
