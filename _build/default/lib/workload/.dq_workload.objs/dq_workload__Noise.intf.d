lib/workload/noise.mli: Datagen Dq_relation Random Relation
