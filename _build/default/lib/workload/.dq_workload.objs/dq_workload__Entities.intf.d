lib/workload/entities.mli:
