lib/workload/metrics.mli: Dq_relation Format Relation
