lib/workload/order_schema.ml: Dq_relation Schema
