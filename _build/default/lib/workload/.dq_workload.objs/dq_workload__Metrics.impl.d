lib/workload/metrics.ml: Dq_relation Format Relation Schema Tuple Value
