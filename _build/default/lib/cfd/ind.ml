open Dq_relation

type t = {
  name : string;
  lhs_relation : string;
  lhs : int array;
  rhs_relation : string;
  rhs : int array;
}

let resolve schema attrs ~side =
  match attrs with
  | [] -> invalid_arg (Printf.sprintf "Ind.make: empty %s attribute list" side)
  | _ ->
    let seen = Hashtbl.create 4 in
    Array.of_list
      (List.map
         (fun a ->
           if Hashtbl.mem seen a then
             invalid_arg (Printf.sprintf "Ind.make: duplicate attribute %S" a);
           Hashtbl.add seen a ();
           match Schema.position schema a with
           | Some i -> i
           | None ->
             invalid_arg
               (Printf.sprintf "Ind.make: unknown attribute %S in %s" a
                  (Schema.name schema)))
         attrs)

let make ?(name = "ind") ~lhs:(lhs_schema, lhs_attrs) ~rhs:(rhs_schema, rhs_attrs)
    () =
  if List.length lhs_attrs <> List.length rhs_attrs then
    invalid_arg "Ind.make: LHS and RHS attribute lists differ in length";
  {
    name;
    lhs_relation = Schema.name lhs_schema;
    lhs = resolve lhs_schema lhs_attrs ~side:"LHS";
    rhs_relation = Schema.name rhs_schema;
    rhs = resolve rhs_schema rhs_attrs ~side:"RHS";
  }

let name ind = ind.name

let lhs_relation ind = ind.lhs_relation

let rhs_relation ind = ind.rhs_relation

let lhs_positions ind = Array.copy ind.lhs

let rhs_positions ind = Array.copy ind.rhs

let pp ppf ind =
  Format.fprintf ppf "%s: %s[%s] \xe2\x8a\x86 %s[%s]" ind.name ind.lhs_relation
    (String.concat "," (Array.to_list (Array.map string_of_int ind.lhs)))
    ind.rhs_relation
    (String.concat "," (Array.to_list (Array.map string_of_int ind.rhs)))

let project positions t =
  let values = Array.map (Tuple.get t) positions in
  if Array.exists Value.is_null values then None else Some values

let project_lhs ind t = project ind.lhs t

let referenced_keys db ind =
  let table = Vkey.Table.create 256 in
  Relation.iter
    (fun t ->
      match project ind.rhs t with
      | Some key -> Vkey.Table.replace table key ()
      | None -> ())
    (Database.find_exn db ind.rhs_relation);
  table

let violations db ind =
  let keys = referenced_keys db ind in
  Relation.fold
    (fun acc t ->
      match project ind.lhs t with
      | Some key when not (Vkey.Table.mem keys key) -> Tuple.tid t :: acc
      | Some _ | None -> acc)
    []
    (Database.find_exn db ind.lhs_relation)
  |> List.rev

let satisfies db inds = List.for_all (fun ind -> violations db ind = []) inds
