open Dq_relation

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse_error of error

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* Lexer ------------------------------------------------------------- *)

type token =
  | Word of string (* bare word: attribute name, CFD name or value *)
  | Quoted of string
  | Lbracket
  | Rbracket
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Comma
  | Colon
  | Arrow (* -> *)
  | Bars (* || *)

let token_name = function
  | Word w -> Printf.sprintf "%S" w
  | Quoted q -> Printf.sprintf "\"%s\"" q
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Comma -> "','"
  | Colon -> "':'"
  | Arrow -> "'->'"
  | Bars -> "'||'"

let is_bare_char c =
  match c with
  | '[' | ']' | '(' | ')' | '{' | '}' | ',' | ':' | '#' | '"' | '|' -> false
  | c when c = ' ' || c = '\t' || c = '\n' || c = '\r' -> false
  | _ -> true

let tokenize text =
  let n = String.length text in
  let tokens = Vec.create () in
  let line = ref 1 in
  let push t = Vec.push tokens (t, !line) in
  let rec skip_comment i =
    if i >= n || text.[i] = '\n' then i else skip_comment (i + 1)
  in
  let rec lex i =
    if i >= n then ()
    else
      match text.[i] with
      | '\n' ->
        incr line;
        lex (i + 1)
      | ' ' | '\t' | '\r' -> lex (i + 1)
      | '#' -> lex (skip_comment i)
      | '[' -> push Lbracket; lex (i + 1)
      | ']' -> push Rbracket; lex (i + 1)
      | '(' -> push Lparen; lex (i + 1)
      | ')' -> push Rparen; lex (i + 1)
      | '{' -> push Lbrace; lex (i + 1)
      | '}' -> push Rbrace; lex (i + 1)
      | ',' -> push Comma; lex (i + 1)
      | ':' -> push Colon; lex (i + 1)
      | '|' ->
        if i + 1 < n && text.[i + 1] = '|' then begin
          push Bars;
          lex (i + 2)
        end
        else fail !line "expected '||' (single '|' is not a token)"
      | '"' ->
        let b = Buffer.create 16 in
        let rec quoted j =
          if j >= n then fail !line "unterminated quoted value"
          else if text.[j] = '"' then begin
            push (Quoted (Buffer.contents b));
            lex (j + 1)
          end
          else begin
            if text.[j] = '\n' then incr line;
            Buffer.add_char b text.[j];
            quoted (j + 1)
          end
        in
        quoted (i + 1)
      | c when is_bare_char c ->
        let j = ref i in
        let b = Buffer.create 16 in
        (* '-' starts a bare word unless it begins '->'. *)
        let continue_bare k =
          k < n && is_bare_char text.[k] && not (text.[k] = '-' && k + 1 < n && text.[k + 1] = '>')
        in
        if c = '-' && i + 1 < n && text.[i + 1] = '>' then begin
          push Arrow;
          lex (i + 2)
        end
        else begin
          while continue_bare !j do
            Buffer.add_char b text.[!j];
            incr j
          done;
          push (Word (Buffer.contents b));
          lex !j
        end
      | c -> fail !line "unexpected character %C" c
  in
  lex 0;
  Vec.to_list tokens

(* Parser ------------------------------------------------------------ *)

type state = { mutable toks : (token * int) list; mutable last_line : int }

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t

let next st =
  match st.toks with
  | [] -> fail st.last_line "unexpected end of input"
  | (t, line) :: rest ->
    st.toks <- rest;
    st.last_line <- line;
    t

let expect st want =
  let t = next st in
  if t <> want then
    fail st.last_line "expected %s but found %s" (token_name want) (token_name t)

let parse_word st ~what =
  match next st with
  | Word w -> w
  | Quoted q -> q
  | t -> fail st.last_line "expected %s but found %s" what (token_name t)

let parse_attr_list st =
  expect st Lbracket;
  let rec more acc =
    let a = parse_word st ~what:"an attribute name" in
    match next st with
    | Comma -> more (a :: acc)
    | Rbracket -> List.rev (a :: acc)
    | t ->
      fail st.last_line "expected ',' or ']' but found %s" (token_name t)
  in
  more []

let parse_pattern st =
  match next st with
  | Word "_" -> Pattern.Wild
  | Word w -> Pattern.const (Value.of_string w)
  | Quoted q -> Pattern.const (Value.string q)
  | t -> fail st.last_line "expected a pattern but found %s" (token_name t)

let parse_row st ~n_lhs ~n_rhs =
  expect st Lparen;
  let rec pats acc stop =
    let p = parse_pattern st in
    match next st with
    | Comma -> pats (p :: acc) stop
    | t when t = stop -> List.rev (p :: acc)
    | t ->
      fail st.last_line "expected ',' or %s but found %s" (token_name stop)
        (token_name t)
  in
  let lhs = pats [] Bars in
  let rhs = pats [] Rparen in
  if List.length lhs <> n_lhs then
    fail st.last_line "pattern row has %d LHS entries, expected %d"
      (List.length lhs) n_lhs;
  if List.length rhs <> n_rhs then
    fail st.last_line "pattern row has %d RHS entries, expected %d"
      (List.length rhs) n_rhs;
  (match peek st with Some Comma -> ignore (next st) | _ -> ());
  Cfd.Tableau.{ lhs; rhs }

let parse_cfd st =
  let name = parse_word st ~what:"a CFD name" in
  expect st Colon;
  let lhs_attrs = parse_attr_list st in
  expect st Arrow;
  let rhs_attrs = parse_attr_list st in
  let rows =
    match peek st with
    | Some Lbrace ->
      ignore (next st);
      let rec more acc =
        match peek st with
        | Some Rbrace ->
          ignore (next st);
          List.rev acc
        | Some _ ->
          more
            (parse_row st ~n_lhs:(List.length lhs_attrs)
               ~n_rhs:(List.length rhs_attrs)
            :: acc)
        | None -> fail st.last_line "unterminated '{' block"
      in
      more []
    | _ -> []
  in
  Cfd.Tableau.{ name; lhs_attrs; rhs_attrs; rows }

let parse_string text =
  match
    let st = { toks = tokenize text; last_line = 1 } in
    let rec all acc =
      match peek st with None -> List.rev acc | Some _ -> all (parse_cfd st :: acc)
    in
    all []
  with
  | tabs -> Ok tabs
  | exception Parse_error e -> Error e

let parse_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string text

let resolve schema tabs =
  Cfd.number (List.concat_map (Cfd.normalize schema) tabs)

let quote_if_needed s =
  let bare =
    String.length s > 0
    && String.for_all is_bare_char s
    && (not (String.equal s "_"))
    && not (String.length s >= 2 && s.[0] = '-' && s.[1] = '>')
  in
  if bare then s else "\"" ^ s ^ "\""

let pattern_to_source = function
  | Pattern.Wild -> "_"
  | Pattern.Const v -> quote_if_needed (Value.to_string v)

let to_string tabs =
  let b = Buffer.create 1024 in
  List.iter
    (fun (tab : Cfd.Tableau.t) ->
      Buffer.add_string b
        (Printf.sprintf "%s: [%s] -> [%s]" tab.name
           (String.concat ", " tab.lhs_attrs)
           (String.concat ", " tab.rhs_attrs));
      (match tab.rows with
      | [] -> ()
      | rows ->
        Buffer.add_string b " {\n";
        List.iter
          (fun (row : Cfd.Tableau.row) ->
            let pats ps = String.concat ", " (List.map pattern_to_source ps) in
            Buffer.add_string b
              (Printf.sprintf "  (%s || %s)\n" (pats row.lhs) (pats row.rhs)))
          rows;
        Buffer.add_string b "}");
      Buffer.add_char b '\n')
    tabs;
  Buffer.contents b
