module Value = Dq_relation.Value

type t = Wild | Const of Value.t

let wild = Wild

let const v =
  if Value.is_null v then invalid_arg "Pattern.const: null has no place in a pattern tuple";
  Const v

let is_wild = function Wild -> true | Const _ -> false

let matches v p =
  match p with
  | Wild -> not (Value.is_null v)
  | Const c -> Value.equal v c

let matches_row values pats =
  if Array.length values <> Array.length pats then
    invalid_arg "Pattern.matches_row: length mismatch";
  let rec loop i =
    i >= Array.length values || (matches values.(i) pats.(i) && loop (i + 1))
  in
  loop 0

let subsumes p q =
  match p, q with
  | _, Wild -> true
  | Const a, Const b -> Value.equal a b
  | Wild, Const _ -> false

let equal p q =
  match p, q with
  | Wild, Wild -> true
  | Const a, Const b -> Value.equal a b
  | (Wild | Const _), _ -> false

let compare p q =
  match p, q with
  | Wild, Wild -> 0
  | Wild, Const _ -> -1
  | Const _, Wild -> 1
  | Const a, Const b -> Value.compare a b

let to_string = function Wild -> "_" | Const v -> Value.to_string v

let pp ppf p = Format.pp_print_string ppf (to_string p)
