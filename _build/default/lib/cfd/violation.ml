open Dq_relation

type t =
  | Single of { tid : int; cfd : Cfd.t }
  | Pair of { tid1 : int; tid2 : int; cfd : Cfd.t }

let cfd_of = function Single { cfd; _ } -> cfd | Pair { cfd; _ } -> cfd

let tids = function
  | Single { tid; _ } -> [ tid ]
  | Pair { tid1; tid2; _ } -> [ tid1; tid2 ]

let pp ppf = function
  | Single { tid; cfd } ->
    Format.fprintf ppf "tuple #%d violates %a" tid Cfd.pp cfd
  | Pair { tid1; tid2; cfd } ->
    Format.fprintf ppf "tuples #%d and #%d violate %a" tid1 tid2 Cfd.pp cfd

let violates_constant cfd t =
  match Cfd.rhs_pattern cfd with
  | Pattern.Wild -> false
  | Pattern.Const a ->
    Cfd.applies_lhs cfd t
    &&
    let v = Tuple.get t (Cfd.rhs cfd) in
    (not (Value.is_null v)) && not (Value.equal v a)

let pair_conflict cfd t1 t2 =
  Pattern.is_wild (Cfd.rhs_pattern cfd)
  && Cfd.applies_lhs cfd t1 && Cfd.applies_lhs cfd t2
  && Vkey.equal (Cfd.lhs_key cfd t1) (Cfd.lhs_key cfd t2)
  &&
  let v1 = Tuple.get t1 (Cfd.rhs cfd) and v2 = Tuple.get t2 (Cfd.rhs cfd) in
  (not (Value.is_null v1)) && (not (Value.is_null v2)) && not (Value.equal v1 v2)

(* Group the tuples matching a wildcard-RHS clause's LHS pattern by their LHS
   key, recording per-group RHS value multiplicities.  All pair-violation
   queries reduce to these group statistics. *)
type group = {
  mutable members : Tuple.t list;
  rhs_counts : (Value.t, int ref) Hashtbl.t; (* non-null RHS values *)
  mutable non_null : int;
}

let groups_of_clause rel cfd =
  let table = Vkey.Table.create 256 in
  Relation.iter
    (fun t ->
      if Cfd.applies_lhs cfd t then begin
        let key = Cfd.lhs_key cfd t in
        let g =
          match Vkey.Table.find_opt table key with
          | Some g -> g
          | None ->
            let g = { members = []; rhs_counts = Hashtbl.create 4; non_null = 0 } in
            Vkey.Table.add table key g;
            g
        in
        g.members <- t :: g.members;
        let v = Tuple.get t (Cfd.rhs cfd) in
        if not (Value.is_null v) then begin
          g.non_null <- g.non_null + 1;
          match Hashtbl.find_opt g.rhs_counts v with
          | Some n -> incr n
          | None -> Hashtbl.add g.rhs_counts v (ref 1)
        end
      end)
    rel;
  table

let group_conflicts g = Hashtbl.length g.rhs_counts >= 2

(* Number of pair violations tuple [t] incurs inside its group: tuples whose
   RHS value is non-null and different from [t]'s. *)
let group_vio_of g v =
  if Value.is_null v then 0
  else
    let same =
      match Hashtbl.find_opt g.rhs_counts v with Some n -> !n | None -> 0
    in
    g.non_null - same

(* One pass over the relation finding every constant-clause violation.
   Pattern tableaus can hold thousands of rows, so scanning every clause
   per tuple is ruinous; instead each clause is anchored on its first
   constant LHS pattern and looked up by the tuple's own value at that
   position — O(arity) probes per tuple plus the matching rows. *)
let iter_constant_violations rel sigma f =
  let plain = ref [] in
  let anchored : (int * Value.t, Cfd.t list) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun cfd ->
      if Cfd.is_constant cfd then begin
        let lhs = Cfd.lhs cfd and pats = Cfd.lhs_patterns cfd in
        let anchor = ref None in
        Array.iteri
          (fun i pos ->
            if !anchor = None then
              match pats.(i) with
              | Pattern.Const c -> anchor := Some (pos, c)
              | Pattern.Wild -> ())
          lhs;
        match !anchor with
        | None -> plain := cfd :: !plain
        | Some key ->
          let prev =
            match Hashtbl.find_opt anchored key with Some l -> l | None -> []
          in
          Hashtbl.replace anchored key (cfd :: prev)
      end)
    sigma;
  let plain = List.rev !plain in
  let arity = Schema.arity (Relation.schema rel) in
  Relation.iter
    (fun t ->
      let check cfd = if violates_constant cfd t then f cfd t in
      List.iter check plain;
      for p = 0 to arity - 1 do
        match Hashtbl.find_opt anchored (p, Tuple.get t p) with
        | Some cfds -> List.iter check cfds
        | None -> ()
      done)
    rel

let iter_wild_violations rel sigma f =
  Array.iter
    (fun cfd ->
      if not (Cfd.is_constant cfd) then
        Vkey.Table.iter
          (fun _key g -> if group_conflicts g then f cfd g)
          (groups_of_clause rel cfd))
    sigma

let find_all rel sigma =
  let out = ref [] in
  iter_constant_violations rel sigma (fun cfd t ->
      out := Single { tid = Tuple.tid t; cfd } :: !out);
  iter_wild_violations rel sigma (fun cfd g ->
      (* One pair per member, each against a witness with a different
         (non-null) RHS value, so every involved tuple is reported
         without a quadratic listing. *)
      List.iter
        (fun t ->
          let v = Tuple.get t (Cfd.rhs cfd) in
          if group_vio_of g v > 0 then
            let witness =
              List.find
                (fun t' ->
                  let v' = Tuple.get t' (Cfd.rhs cfd) in
                  (not (Value.is_null v')) && not (Value.equal v v'))
                g.members
            in
            out :=
              Pair { tid1 = Tuple.tid t; tid2 = Tuple.tid witness; cfd }
              :: !out)
        g.members);
  List.rev !out

let vio_counts rel sigma =
  let counts = Hashtbl.create 256 in
  let bump tid n =
    if n > 0 then
      match Hashtbl.find_opt counts tid with
      | Some m -> Hashtbl.replace counts tid (m + n)
      | None -> Hashtbl.add counts tid n
  in
  iter_constant_violations rel sigma (fun _cfd t -> bump (Tuple.tid t) 1);
  iter_wild_violations rel sigma (fun cfd g ->
      List.iter
        (fun t ->
          bump (Tuple.tid t) (group_vio_of g (Tuple.get t (Cfd.rhs cfd))))
        g.members);
  counts

let violating_tids rel sigma =
  let counts = vio_counts rel sigma in
  Relation.fold
    (fun acc t -> if Hashtbl.mem counts (Tuple.tid t) then Tuple.tid t :: acc else acc)
    [] rel
  |> List.rev

let total rel sigma =
  Hashtbl.fold (fun _ n acc -> acc + n) (vio_counts rel sigma) 0

let vio_tuple rel sigma t =
  let vio = ref 0 in
  Array.iter
    (fun cfd ->
      if Cfd.is_constant cfd then begin
        if violates_constant cfd t then incr vio
      end
      else if Cfd.applies_lhs cfd t then begin
        let v = Tuple.get t (Cfd.rhs cfd) in
        if not (Value.is_null v) then begin
          let key = Cfd.lhs_key cfd t in
          Relation.iter
            (fun t' ->
              if
                Tuple.tid t' <> Tuple.tid t
                && Cfd.applies_lhs cfd t'
                && Vkey.equal (Cfd.lhs_key cfd t') key
              then
                let v' = Tuple.get t' (Cfd.rhs cfd) in
                if (not (Value.is_null v')) && not (Value.equal v v') then incr vio)
            rel
        end
      end)
    sigma;
  !vio

let satisfies rel sigma =
  try
    iter_constant_violations rel sigma (fun _ _ -> raise Exit);
    iter_wild_violations rel sigma (fun _ _ -> raise Exit);
    true
  with Exit -> false
