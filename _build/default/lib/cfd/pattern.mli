(** Pattern-tableau entries and the match order [≼] of Section 2.

    A pattern entry is either a constant from the attribute domain or the
    unnamed variable ['_'] ("don't care").  The order on values and patterns
    is: [v ≼ v] and [v ≼ '_'] for any constant [v].

    Per the paper's Remark (2) in Section 3.1, a [null] data value matches
    {e no} pattern entry — CFDs only apply to tuples that precisely match a
    pattern tuple, and pattern tuples contain no nulls. *)

type t =
  | Wild  (** the unnamed variable ['_'] *)
  | Const of Dq_relation.Value.t

val wild : t

val const : Dq_relation.Value.t -> t
(** @raise Invalid_argument if the value is [Null]: pattern tuples never
    contain nulls. *)

val is_wild : t -> bool

val matches : Dq_relation.Value.t -> t -> bool
(** [matches v p] is [v ≼ p].  [Null] matches nothing. *)

val matches_row : Dq_relation.Value.t array -> t array -> bool
(** Pointwise [≼]; arrays must have equal length. *)

val subsumes : t -> t -> bool
(** Order on patterns themselves: [subsumes p q] iff every value matching
    [p] matches [q] (i.e. [q = Wild] or [p = q]). *)

val equal : t -> t -> bool

val compare : t -> t -> int

val to_string : t -> string

val pp : Format.formatter -> t -> unit
