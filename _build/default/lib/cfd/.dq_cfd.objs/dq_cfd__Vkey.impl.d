lib/cfd/vkey.ml: Array Dq_relation Hashtbl
