lib/cfd/ind.mli: Database Dq_relation Format Schema Tuple Value
