lib/cfd/cfd_parser.mli: Cfd Dq_relation Format
