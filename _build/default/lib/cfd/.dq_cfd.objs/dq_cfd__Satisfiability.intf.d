lib/cfd/satisfiability.mli: Cfd Dq_relation Schema Value
