lib/cfd/cfd.mli: Dq_relation Format Pattern Schema Tuple Value
