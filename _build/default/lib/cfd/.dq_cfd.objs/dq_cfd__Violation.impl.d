lib/cfd/violation.ml: Array Cfd Dq_relation Format Hashtbl List Pattern Relation Schema Tuple Value Vkey
