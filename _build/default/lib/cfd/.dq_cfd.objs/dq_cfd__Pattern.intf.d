lib/cfd/pattern.mli: Dq_relation Format
