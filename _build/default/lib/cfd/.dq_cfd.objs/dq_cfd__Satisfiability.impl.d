lib/cfd/satisfiability.ml: Array Cfd Dq_relation List Option Pattern Printf Schema Value
