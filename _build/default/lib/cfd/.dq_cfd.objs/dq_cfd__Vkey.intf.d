lib/cfd/vkey.mli: Dq_relation Hashtbl
