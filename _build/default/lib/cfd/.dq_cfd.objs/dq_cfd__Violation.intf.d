lib/cfd/violation.mli: Cfd Dq_relation Format Hashtbl Relation Tuple
