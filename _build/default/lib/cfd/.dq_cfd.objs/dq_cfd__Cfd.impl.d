lib/cfd/cfd.ml: Array Dq_relation Format Hashtbl Int List Pattern Printf Schema String Tuple
