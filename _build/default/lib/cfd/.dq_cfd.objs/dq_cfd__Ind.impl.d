lib/cfd/ind.ml: Array Database Dq_relation Format Hashtbl List Printf Relation Schema String Tuple Value Vkey
