lib/cfd/pattern.ml: Array Dq_relation Format
