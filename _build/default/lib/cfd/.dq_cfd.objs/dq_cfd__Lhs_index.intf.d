lib/cfd/lhs_index.mli: Cfd Dq_relation Relation Tuple Value
