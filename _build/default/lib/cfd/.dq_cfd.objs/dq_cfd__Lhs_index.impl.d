lib/cfd/lhs_index.ml: Array Cfd Dq_relation Hashtbl List Pattern Relation Tuple Value Vkey
