lib/cfd/cfd_parser.ml: Buffer Cfd Dq_relation Format Fun List Pattern Printf String Value Vec
