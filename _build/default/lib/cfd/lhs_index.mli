(** LHS-indices (Section 5.2).

    For each clause [φ = (X → A, tp)] over a {e clean} relation, the index
    maps the LHS key [t'[X]] of every tuple matching [tp[X]] to the unique
    RHS value the relation holds for it.  A candidate tuple can then be
    checked against all of Σ in O(|Σ|) hash lookups instead of a scan —
    the workhorse of [TUPLERESOLVE].

    Constant-RHS clauses need no table: the expected value is [tp[A]]
    itself, so checking is a direct pattern test. *)

open Dq_relation

type t

val build : Cfd.t array -> Relation.t -> t
(** Index a (clean) relation for every clause of Σ.  If the relation is not
    actually clean, the first non-null RHS value seen per key wins. *)

val add_tuple : t -> Tuple.t -> unit
(** Register a newly inserted (repaired) tuple, keeping the index current as
    the repair grows. *)

val expected_rhs : t -> Cfd.t -> Tuple.t -> Value.t option
(** The RHS value clause [cfd] forces on this tuple, if any: the constant
    [tp[A]] when the clause is constant, otherwise the indexed value for the
    tuple's LHS key.  [None] when the tuple does not match [tp[X]] or no
    tuple with this key has been indexed. *)

val violates : t -> Cfd.t -> Tuple.t -> bool
(** Would the tuple, if inserted, violate the clause against the indexed
    relation?  (Nulls resolve, as in {!Violation}.) *)

val vio : t -> Tuple.t -> int
(** Number of clauses of Σ the tuple would violate if inserted. *)

val vio_subset : t -> Cfd.t list -> Tuple.t -> int
(** Like {!vio} restricted to the given clauses. *)
