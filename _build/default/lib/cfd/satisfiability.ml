open Dq_relation

(* Candidate values per attribute: every constant mentioned for that
   attribute in some pattern, plus one fresh value not mentioned anywhere. *)
let candidates schema sigma =
  let arity = Schema.arity schema in
  let consts = Array.init arity (fun _ -> ref []) in
  let note pos p =
    match p with
    | Pattern.Wild -> ()
    | Pattern.Const v ->
      if not (List.exists (Value.equal v) !(consts.(pos))) then
        consts.(pos) := v :: !(consts.(pos))
  in
  Array.iter
    (fun cfd ->
      let lhs = Cfd.lhs cfd and pats = Cfd.lhs_patterns cfd in
      Array.iteri (fun i pos -> note pos pats.(i)) lhs;
      note (Cfd.rhs cfd) (Cfd.rhs_pattern cfd))
    sigma;
  Array.map
    (fun cs ->
      let fresh =
        let rec pick i =
          let v = Value.string (Printf.sprintf "#fresh%d" i) in
          if List.exists (Value.equal v) !cs then pick (i + 1) else v
        in
        pick 0
      in
      fresh :: List.rev !cs)
    consts

(* Check every constant-RHS clause whose attributes are all assigned
   (positions < [upto] are assigned). *)
let consistent_prefix sigma values upto =
  Array.for_all
    (fun cfd ->
      match Cfd.rhs_pattern cfd with
      | Pattern.Wild -> true (* vacuous on a single tuple *)
      | Pattern.Const a ->
        let lhs = Cfd.lhs cfd and pats = Cfd.lhs_patterns cfd in
        let all_assigned =
          Cfd.rhs cfd < upto && Array.for_all (fun pos -> pos < upto) lhs
        in
        (not all_assigned)
        ||
        let lhs_match =
          let rec loop i =
            i >= Array.length lhs
            || (Pattern.matches values.(lhs.(i)) pats.(i) && loop (i + 1))
          in
          loop 0
        in
        (not lhs_match) || Value.equal values.(Cfd.rhs cfd) a)
    sigma

let witness schema sigma =
  let arity = Schema.arity schema in
  let cands = candidates schema sigma in
  let values = Array.make arity Value.null in
  let rec assign pos =
    if pos >= arity then true
    else
      List.exists
        (fun v ->
          values.(pos) <- v;
          consistent_prefix sigma values (pos + 1) && assign (pos + 1))
        cands.(pos)
  in
  if assign 0 then Some (Array.copy values) else None

let is_satisfiable schema sigma = Option.is_some (witness schema sigma)

let check_exn schema sigma =
  if not (is_satisfiable schema sigma) then
    invalid_arg "Satisfiability.check_exn: the CFD set is unsatisfiable"
