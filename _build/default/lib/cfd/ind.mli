(** Inclusion dependencies (INDs).

    An IND [R1[X] ⊆ R2[Y]] demands that every (null-free) [X]-projection of
    a tuple of [R1] appears as the [Y]-projection of some tuple of [R2] —
    foreign keys, in practice.  The paper's future work targets cleaning
    with CFDs {e and} INDs together, following Bohannon et al. [5], which
    resolves IND violations either by modifying the referencing values or
    by inserting a (partially null) referenced tuple.  Detection and those
    two repair moves live here; {!Dq_core}'s [Ind_repair] orchestrates
    them with the CFD repairers.

    As with CFDs, a tuple whose [X] values contain [null] is exempt — null
    marks the reference as uncertain rather than dangling. *)

open Dq_relation

type t

val make :
  ?name:string ->
  lhs:Schema.t * string list ->
  rhs:Schema.t * string list ->
  unit ->
  t
(** [make ~lhs:(r1, x) ~rhs:(r2, y) ()] builds [R1[X] ⊆ R2[Y]].
    @raise Invalid_argument on unknown attributes, arity mismatch between
    [x] and [y], empty attribute lists, or duplicate attributes. *)

val name : t -> string

val lhs_relation : t -> string

val rhs_relation : t -> string

val lhs_positions : t -> int array

val rhs_positions : t -> int array

val pp : Format.formatter -> t -> unit
(** e.g. [fk: order[id] ⊆ item[id]]. *)

val project_lhs : t -> Tuple.t -> Value.t array option
(** The tuple's [X]-projection, or [None] if it contains a null (exempt). *)

val violations : Database.t -> t -> int list
(** Tids of [R1] tuples whose reference dangles.
    @raise Not_found if either relation is absent from the database. *)

val satisfies : Database.t -> t list -> bool
