(** Hashable value-array keys, used to group tuples by their LHS values. *)

type t = Dq_relation.Value.t array

val equal : t -> t -> bool

val hash : t -> int

module Table : Hashtbl.S with type key = t
