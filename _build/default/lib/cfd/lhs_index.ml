open Dq_relation

type t = {
  sigma : Cfd.t array;
  tables : Value.t Vkey.Table.t array;
  (* clauses partitioned for O(probes + matches) per-tuple checking:
     anchored on their first constant LHS pattern when they have one *)
  plain : Cfd.t list;
  anchored : (int * Value.t, Cfd.t list) Hashtbl.t;
}

let partition sigma =
  let plain = ref [] in
  let anchored = Hashtbl.create 256 in
  Array.iter
    (fun cfd ->
      let lhs = Cfd.lhs cfd and pats = Cfd.lhs_patterns cfd in
      let anchor = ref None in
      Array.iteri
        (fun i pos ->
          if !anchor = None then
            match pats.(i) with
            | Pattern.Const c -> anchor := Some (pos, c)
            | Pattern.Wild -> ())
        lhs;
      match !anchor with
      | None -> plain := cfd :: !plain
      | Some key ->
        let prev =
          match Hashtbl.find_opt anchored key with Some l -> l | None -> []
        in
        Hashtbl.replace anchored key (cfd :: prev))
    sigma;
  (List.rev !plain, anchored)

let add_clause_tuple cfd table t =
  if Cfd.applies_lhs cfd t then begin
    let v = Tuple.get t (Cfd.rhs cfd) in
    if not (Value.is_null v) then begin
      let key = Cfd.lhs_key cfd t in
      if not (Vkey.Table.mem table key) then Vkey.Table.add table key v
    end
  end

let add_tuple idx t =
  Array.iteri
    (fun i cfd ->
      if not (Cfd.is_constant cfd) then
        add_clause_tuple cfd idx.tables.(i) t)
    idx.sigma

let build sigma rel =
  let plain, anchored = partition sigma in
  let idx =
    {
      sigma;
      tables = Array.map (fun _ -> Vkey.Table.create 256) sigma;
      plain;
      anchored;
    }
  in
  Relation.iter (fun t -> add_tuple idx t) rel;
  idx

let expected_rhs idx cfd t =
  if not (Cfd.applies_lhs cfd t) then None
  else
    match Cfd.rhs_pattern cfd with
    | Pattern.Const a -> Some a
    | Pattern.Wild ->
      Vkey.Table.find_opt idx.tables.(Cfd.id cfd) (Cfd.lhs_key cfd t)

let violates idx cfd t =
  match expected_rhs idx cfd t with
  | None -> false
  | Some expected ->
    let v = Tuple.get t (Cfd.rhs cfd) in
    (not (Value.is_null v)) && not (Value.equal v expected)

let vio idx t =
  let n = ref 0 in
  let check cfd = if violates idx cfd t then incr n in
  List.iter check idx.plain;
  for p = 0 to Tuple.arity t - 1 do
    match Hashtbl.find_opt idx.anchored (p, Tuple.get t p) with
    | Some cfds -> List.iter check cfds
    | None -> ()
  done;
  !n

let vio_subset idx clauses t =
  List.fold_left
    (fun n cfd -> if violates idx cfd t then n + 1 else n)
    0 clauses
