(** A textual format for CFD sets, so constraints can live in files next to
    the data they govern.

    Grammar (comments run from [#] to end of line):
    {v
    cfd   ::= name ':' '[' attrs ']' '->' '[' attrs ']' body?
    body  ::= '{' row* '}'           (* absent body = plain FD *)
    row   ::= '(' pats '||' pats ')' ','?
    pat   ::= '_' | value
    value ::= bare word | "quoted string"
    v}

    Example:
    {v
    phi1: [AC, PN] -> [STR, CT, ST] {
      (212, _ || _, NYC, NY)
      (610, _ || _, PHI, PA)
    }
    phi3: [id] -> [name, PR]        # a traditional FD
    v}

    Bare values are typed like CSV cells ({!Dq_relation.Value.of_string});
    quoted values are always strings. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_string : string -> (Cfd.Tableau.t list, error) result

val parse_file : string -> (Cfd.Tableau.t list, error) result

val resolve : Dq_relation.Schema.t -> Cfd.Tableau.t list -> Cfd.t array
(** Normalize the tableaux against a schema and number the clauses —
    the Σ every algorithm consumes.  @raise Invalid_argument on unknown
    attributes or arity mismatches. *)

val to_string : Cfd.Tableau.t list -> string
(** Render tableaux back into the file format ([parse_string] ∘
    [to_string] is the identity up to layout). *)
