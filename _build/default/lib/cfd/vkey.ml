module Value = Dq_relation.Value

type t = Value.t array

let equal k1 k2 =
  Array.length k1 = Array.length k2 && Array.for_all2 Value.equal k1 k2

let hash k = Array.fold_left (fun h v -> (h * 31) + Value.hash v) 7 k

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
