(** Satisfiability of a set of CFDs.

    Unlike traditional FDs, a set of CFDs may be unsatisfiable — no non-empty
    instance can satisfy it (Section 2; shown intractable in general but
    PTIME for a fixed schema in the companion paper [6]).  The cleaning
    algorithms assume a satisfiable Σ, so callers should check first.

    The check exploits that CFDs are universally quantified: any sub-instance
    of a satisfying instance also satisfies Σ, hence Σ is satisfiable iff
    some {e single-tuple} instance satisfies it.  For a single tuple only
    constant-RHS clauses constrain anything, and each attribute can w.l.o.g.
    take either a constant appearing in Σ's patterns for that attribute or
    one fresh value — a finite search space explored by backtracking (the
    schema is fixed, so this is polynomial for each fixed schema). *)

open Dq_relation

val witness : Schema.t -> Cfd.t array -> Value.t array option
(** A single tuple (as a value array) satisfying Σ, or [None] if Σ is
    unsatisfiable. *)

val is_satisfiable : Schema.t -> Cfd.t array -> bool

val check_exn : Schema.t -> Cfd.t array -> unit
(** @raise Invalid_argument if Σ is unsatisfiable. *)
