(* cfdclean: CFD-based data cleaning from the command line.

   Subcommands:
     detect    report CFD violations in a CSV file
     repair    repair a CSV file (BATCHREPAIR or INCREPAIR)
     check     check a CFD file for satisfiability
     lint      static analysis of a CFD file (E/W diagnostic codes)
     analyze   whole-ruleset interaction analysis: dependency cycles,
               shard-safety partition, oscillation pairs, cost estimates
     sample    repair, then estimate the repair's inaccuracy rate by
               stratified sampling against a ground-truth file
     discover  mine CFDs from a (mostly clean) CSV file
     generate  emit a synthetic order dataset (clean + dirty + CFDs)

   Data is CSV with a header row; constraints use the textual CFD format
   (see the dataqual.cfd documentation or `cfdclean generate`).

   Every subcommand takes `--format text|json` and `--metrics FILE`.  With
   `--format json` stdout carries one version-2 envelope object
   (Dq_obs.Envelope, shared with the serve daemon's endpoints)

     {"v": 2, "request": ..., "ok": ..., "report": ..., "diagnostics": [...]}

   whose `report` is the engine's structured Dq_obs.Report.t.  Exit codes
   are standardised in Dq_error.Exit: 0 success, 1 problems found
   (violations, rejected sample, unsatisfiable), 2 usage/input error,
   3 lint-gated refusal. *)

open Cmdliner
open Dq_relation
open Dq_cfd
open Dq_core
open Dq_analysis
open Dq_workload
module Pool = Dq_parallel.Pool
module Json = Dq_obs.Json
module Report = Dq_obs.Report
module Metrics = Dq_obs.Metrics
module Provenance = Dq_obs.Provenance
module Trace = Dq_obs.Trace
module Progress = Dq_obs.Progress
module Fault = Dq_fault.Fault
module Deadline = Dq_fault.Deadline
module Atomic_io = Dq_fault.Atomic_io
module Engine = Dq_engine.Engine

let ( let* ) = Result.bind

(* ---- shared plumbing -------------------------------------------------- *)

type format = Text | Json_format

let load_csv path =
  match Csv.load_file_res path with
  | Ok rel -> Ok rel
  | Error e ->
    Error
      (Dq_error.Parse
         { path; line = e.Csv.line; col = e.Csv.col; message = e.Csv.message })
  | exception Sys_error msg -> Error (Dq_error.Io msg)

let load_tableaus path =
  match Cfd_parser.parse_file_located path with
  | Ok ltabs -> Ok ltabs
  | Error e ->
    Error
      (Dq_error.Parse
         { path; line = e.Cfd_parser.line; col = e.col; message = e.message })

(* detect/repair/sample refuse a ruleset with lint errors unless --force:
   an unsatisfiable or ill-typed Σ makes their output meaningless.  With
   --analyze-gate they additionally refuse rulesets whose attribute
   dependency graph has cycles (the Example-4.1 oscillation hazard,
   certified by the Σ-interaction analyzer). *)
let with_inputs ?(force = false) ?(analyze_gate = false) data_path cfd_path k =
  let* rel = load_csv data_path in
  let* ltabs = load_tableaus cfd_path in
  let schema = Relation.schema rel in
  let errors = if force then [] else Lint.run ~errors_only:true ~schema ltabs in
  if errors <> [] then
    Error
      (Dq_error.Lint_gated
         {
           path = cfd_path;
           errors = List.length errors;
           hint =
             Fmt.str
               "run `cfdclean lint %s --data %s` for details, or pass --force"
               cfd_path data_path;
         })
  else
    match Cfd_parser.resolve schema (Cfd_parser.Located.strip_all ltabs) with
    | exception Invalid_argument msg -> Error (Dq_error.Invalid_input msg)
    | sigma -> (
      match
        if analyze_gate then
          (Interaction.analyze schema sigma).Interaction.termination
        else Interaction.Terminating
      with
      | Interaction.Terminating -> k rel sigma
      | Interaction.May_oscillate cycles ->
        Error
          (Dq_error.Analyze_gated
             {
               path = cfd_path;
               cycles = List.length cycles;
               hint =
                 Fmt.str
                   "run `cfdclean analyze %s` for the cycle certificates, or \
                    drop --analyze-gate"
                   cfd_path;
             }))

(* Validate --jobs and run [k] with a pool of that many domains. *)
let with_jobs jobs k =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  if jobs < 1 then
    Error (Dq_error.Invalid_input (Fmt.str "--jobs must be at least 1 (got %d)" jobs))
  else Pool.with_pool ~jobs k

(* What a subcommand hands back on success: the structured report, the
   exit code, extra diagnostics for the JSON envelope, and a thunk that
   prints the human-readable output (run only with --format text). *)
type success = {
  report : Report.t;
  code : int;
  diagnostics : Json.t list;
  text : unit -> unit;
}

let succeed ?(code = Dq_error.Exit.ok) ?(diagnostics = []) report text =
  Ok { report; code; diagnostics; text }

let envelope ~command ~ok ~report ~diagnostics =
  Dq_obs.Envelope.make ~request:command ~ok ~report ~diagnostics ()

(* Arm the fault-injection plan from --fault-plan (or, failing that, the
   DQ_FAULT environment variable).  Site names are validated against the
   compiled-in list so a typo'd plan fails loudly instead of silently
   never firing. *)
let arm_fault plan =
  match
    match plan with Some _ -> plan | None -> Sys.getenv_opt "DQ_FAULT"
  with
  | None -> Ok ()
  | Some text -> (
    match Fault.parse_plan text with
    | Error msg -> Error (Dq_error.Invalid_config ("--fault-plan: " ^ msg))
    | Ok specs -> (
      match
        List.find_opt
          (fun s -> not (List.mem s.Fault.site Fault.known_sites))
          specs
      with
      | Some s ->
        Error
          (Dq_error.Invalid_config
             (Fmt.str "--fault-plan: unknown site %S (known sites: %s)"
                s.Fault.site
                (String.concat ", " Fault.known_sites)))
      | None ->
        Fault.arm specs;
        Ok ()))

(* The uniform tail of every subcommand: print either the text output or
   the JSON envelope, dump the metrics/trace snapshots when asked, and map
   errors to the standard exit codes.  Metrics, trace and progress
   collection are switched on before the command body runs, so engine
   instrumentation is live.  Trace and progress never touch stdout: the
   trace goes to its own file, progress lines to stderr.

   The body runs under a catch-all for the structured failure modes of
   the fault-tolerance layer: an injected fault, an escaped deadline and
   plain I/O failures all map to Dq_error values (and hence stable
   messages and exit codes), never to a backtrace. *)
let run_command ~command ~format ~metrics ~trace ~progress ~fault k =
  if metrics <> None then Metrics.set_enabled true;
  if trace <> None then begin
    Trace.clear ();
    Trace.set_enabled true
  end;
  if progress then Progress.set_enabled true;
  let code =
    let result =
      match arm_fault fault with
      | Error _ as e -> e
      | Ok () -> (
        try k () with
        | Fault.Injected site -> Error (Dq_error.Fault_injected site)
        | Deadline.Expired -> Error Dq_error.Deadline_exceeded
        | Sys_error msg -> Error (Dq_error.Io msg))
    in
    Progress.finish ();
    match result with
    | Ok s ->
      (match format with
      | Text -> s.text ()
      | Json_format ->
        print_string
          (Json.to_string
             (envelope ~command ~ok:true ~report:(Report.to_json s.report)
                ~diagnostics:s.diagnostics)));
      s.code
    | Error e ->
      (match format with
      | Text -> Fmt.epr "cfdclean: %s@." (Dq_error.to_string e)
      | Json_format ->
        print_string
          (Json.to_string
             (envelope ~command ~ok:false ~report:Json.Null
                ~diagnostics:[ Dq_error.to_json e ])));
      Dq_error.exit_code e
  in
  (match trace with
  | None -> ()
  | Some path -> (
    try Trace.write path
    with Sys_error msg -> Fmt.epr "cfdclean: --trace: %s@." msg));
  (match metrics with
  | None -> ()
  | Some path -> (
    try Atomic_io.write_file path (Json.to_string (Metrics.snapshot ()))
    with Sys_error msg -> Fmt.epr "cfdclean: --metrics: %s@." msg));
  `Ok code

let force_arg =
  Arg.(
    value & flag
    & info [ "force" ]
        ~doc:"Run even if the ruleset has lint errors (see $(b,cfdclean lint)).")

let analyze_gate_arg =
  Arg.(
    value & flag
    & info [ "analyze-gate" ]
        ~doc:
          "Refuse rulesets whose attribute dependency graph has cycles (exit \
           3): naive rule application may not terminate on them.  \
           $(b,cfdclean analyze) prints the cycle certificates.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel detection and scoring passes \
           (default: the recommended domain count for this machine).  \
           Results are identical at any job count.")

let format_arg =
  let parse = function
    | "text" -> Ok Text
    | "json" -> Ok Json_format
    | s -> Error (`Msg (Fmt.str "unknown format %S" s))
  in
  let print ppf = function
    | Text -> Fmt.string ppf "text"
    | Json_format -> Fmt.string ppf "json"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: $(b,text), or $(b,json) for one version-2 envelope \
           object {\"v\", \"request\", \"ok\", \"report\", \"diagnostics\"} \
           on stdout.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable metrics collection and write the counter/timer snapshot \
           to $(docv) as JSON on exit.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable span tracing and write a Chrome trace-event JSON dump to \
           $(docv) on exit — load it in $(b,chrome://tracing) or \
           $(b,https://ui.perfetto.dev) to see phases, passes and per-domain \
           worker lanes.")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Show a live progress line (pass, unresolved violations, \
           throughput) on stderr while the engines run.  Never written to \
           stdout, so it composes with $(b,--format json).")

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:
          "Arm deterministic fault injection for testing the \
           fault-tolerance paths: comma-separated $(i,SITE@HIT), \
           $(i,SITE@HIT:raise) or $(i,SITE@HIT:delay MS) specs, e.g. \
           $(b,io.write\\@1) or $(b,pool.task\\@3:delay 50).  Defaults to \
           the $(b,DQ_FAULT) environment variable.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Cooperative time budget in seconds.  When it expires the engine \
           stops at the next safe point and returns its best result so far, \
           marked $(b,degraded) in the report; if nothing usable exists yet \
           the command fails with exit code 4.")

let resolve_deadline = function
  | None -> Ok Deadline.never
  | Some s when s < 0. ->
    Error
      (Dq_error.Invalid_input
         (Fmt.str "--deadline must be non-negative (got %g)" s))
  | Some s -> Ok (Deadline.after s)

(* repair also takes --deadline-passes, a logical budget that cuts at a
   deterministic engine boundary (batch pass / opt-fd stratum / inc
   tuple) — what the degraded-path goldens rely on. *)
let resolve_deadline2 wall passes =
  match (wall, passes) with
  | Some _, Some _ ->
    Error
      (Dq_error.Invalid_input
         "--deadline and --deadline-passes cannot be combined")
  | None, Some n when n < 1 ->
    Error
      (Dq_error.Invalid_input
         (Fmt.str "--deadline-passes must be at least 1 (got %d)" n))
  | None, Some n -> Ok (Deadline.after_passes n)
  | wall, None -> resolve_deadline wall

(* ---- detect ---- *)

let detect data_path cfd_path verbose force analyze_gate jobs format metrics
    trace progress fault =
  run_command ~command:"detect" ~format ~metrics ~trace ~progress ~fault
  @@ fun () ->
  with_inputs ~force ~analyze_gate data_path cfd_path @@ fun rel sigma ->
  with_jobs jobs @@ fun pool ->
  let counts = Violation.vio_counts ~pool rel sigma in
  let dirty = Hashtbl.length counts in
  let total = Hashtbl.fold (fun _ n acc -> acc + n) counts 0 in
  let report =
    Report.make ~engine:"detect"
      ~summary:
        [
          ("tuples", Json.Int (Relation.cardinality rel));
          ("clauses", Json.Int (Array.length sigma));
          ("violating_tuples", Json.Int dirty);
          ("violations", Json.Int total);
        ]
      ()
  in
  succeed ~code:(if dirty = 0 then Dq_error.Exit.ok else Dq_error.Exit.dirty)
    report (fun () ->
      Fmt.pr "%d tuples, %d clauses: %d violating tuples, vio(D) = %d@."
        (Relation.cardinality rel) (Array.length sigma) dirty total;
      if verbose then
        List.iter
          (Fmt.pr "  %a@." Violation.pp)
          (Violation.find_all ~pool rel sigma))

let detect_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"List each violation.")
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Report CFD violations in a CSV file")
    Term.(
      ret
        (const detect $ data $ cfds $ verbose $ force_arg $ analyze_gate_arg
       $ jobs_arg $ format_arg $ metrics_arg $ trace_arg $ progress_arg
       $ fault_arg))

(* ---- repair ---- *)

type algorithm = Batch | Inc of Inc_repair.ordering

let algorithm_conv =
  let parse = function
    | "batch" -> Ok Batch
    | "inc" | "v-inc" -> Ok (Inc Inc_repair.By_violations)
    | "l-inc" -> Ok (Inc Inc_repair.Linear)
    | "w-inc" -> Ok (Inc Inc_repair.By_weight)
    | s -> Error (`Msg (Fmt.str "unknown algorithm %S" s))
  in
  let print ppf = function
    | Batch -> Fmt.string ppf "batch"
    | Inc Inc_repair.By_violations -> Fmt.string ppf "v-inc"
    | Inc Inc_repair.Linear -> Fmt.string ppf "l-inc"
    | Inc Inc_repair.By_weight -> Fmt.string ppf "w-inc"
  in
  Arg.conv (parse, print)

let same_file a b =
  match (Unix.realpath a, Unix.realpath b) with
  | ra, rb -> String.equal ra rb
  | exception Unix.Unix_error _ -> false
  | exception Sys_error _ -> false

(* Where the repaired CSV goes: [None] means stdout (text mode only).
   An output path that resolves to the input file is refused unless
   --in-place; bare --in-place targets the input file itself. *)
let resolve_output ~data_path ~output ~in_place =
  match (output, in_place) with
  | Some path, false when same_file path data_path ->
    Error (Dq_error.Would_overwrite path)
  | Some path, _ -> Ok (Some path)
  | None, true -> Ok (Some data_path)
  | None, false -> Ok None

let save_csv rel path =
  match Csv.save_file rel path with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Dq_error.Io msg)

let print_explain ppf report =
  match report.Report.provenance with
  | [] -> Fmt.pf ppf "explain: no cells changed@."
  | entries ->
    Fmt.pf ppf
      "pass  tuple  attr       old            -> new            clause           cost@.";
    List.iter (fun e -> Fmt.pf ppf "%a@." Provenance.pp_entry e) entries

(* The legacy -a/--algorithm spellings map onto registry names; --engine,
   when given, wins.  Any use of the legacy flag draws a W101 deprecation
   diagnostic (stderr in text mode, the envelope's diagnostics in json). *)
let algorithm_engine = function
  | Batch -> "batch"
  | Inc Inc_repair.By_violations -> "inc"
  | Inc Inc_repair.Linear -> "l-inc"
  | Inc Inc_repair.By_weight -> "w-inc"

let repair data_path cfd_path output in_place explain algorithm engine force
    analyze_gate partition jobs format metrics trace progress fault deadline
    deadline_passes checkpoint checkpoint_every resume =
  run_command ~command:"repair" ~format ~metrics ~trace ~progress ~fault
  @@ fun () ->
  let warnings =
    match algorithm with
    | Some _ ->
      [
        Dq_error.Deprecated_flag
          { flag = "-a/--algorithm"; replacement = "--engine" };
      ]
    | None -> []
  in
  List.iter
    (fun w -> Fmt.epr "cfdclean: warning: %s@." (Dq_error.warning_to_string w))
    warnings;
  let* (module E : Engine.ENGINE) =
    Engine.find
      (match (engine, algorithm) with
      | Some name, _ -> name
      | None, Some a -> algorithm_engine a
      | None, None -> "batch")
  in
  with_inputs ~force ~analyze_gate data_path cfd_path @@ fun rel sigma ->
  if not (Satisfiability.is_satisfiable (Relation.schema rel) sigma) then
    Error Dq_error.Unsatisfiable
  else
    let* () = Engine.check_fragment (module E) (Relation.schema rel) sigma in
    let* out = resolve_output ~data_path ~output ~in_place in
    let* deadline = resolve_deadline2 deadline deadline_passes in
    let* checkpoint =
      match checkpoint with
      | None -> Ok None
      | Some path ->
        if checkpoint_every < 1 then
          Error
            (Dq_error.Invalid_config "--checkpoint-every must be at least 1")
        else Ok (Some { Engine.path; every = checkpoint_every })
    in
    let* resume =
      match resume with
      | None -> Ok None
      | Some path -> (
        match Checkpoint.load path with
        | Ok cp -> Ok (Some cp)
        | Error msg -> Error (Dq_error.Invalid_input (path ^ ": " ^ msg)))
    in
    let* () =
      if (checkpoint <> None || resume <> None) && not E.supports_checkpoint
      then
        Error
          (Dq_error.Invalid_input
             (Fmt.str
                "--checkpoint/--resume are not supported by the %s engine \
                 (use --engine batch or --engine opt-fd)"
                E.name))
      else if partition && not E.supports_partition then
        Error
          (Dq_error.Invalid_input
             (Fmt.str
                "--partition is not supported by the %s engine (use --engine \
                 batch or --engine opt-fd)"
                E.name))
      else Ok ()
    in
    with_jobs jobs @@ fun pool ->
    let partition =
      if partition then
        Some
          (Interaction.analyze (Relation.schema rel) sigma)
            .Interaction.partition
      else None
    in
    let ctx =
      Engine.ctx ~pool ~deadline ?checkpoint ?resume ?partition rel sigma
    in
    let* (repaired, stats_line), report = E.run ctx in
    let* () =
      match out with Some path -> save_csv repaired path | None -> Ok ()
    in
    succeed ~diagnostics:(List.map Dq_error.warning_to_json warnings) report
      (fun () ->
        Fmt.epr "%s@." stats_line;
        Fmt.epr "repair cost: %.3f; dif: %d cells@."
          (Cost.repair_cost ~original:rel ~repair:repaired)
          (Relation.dif rel repaired);
        (match report.Report.degraded with
        | Some d ->
          Fmt.epr "cfdclean: warning: %s — partial repair (progress %.0f%%)@."
            d.Report.reason
            (100. *. d.Report.progress)
        | None -> ());
        (* With the CSV going to stdout the explain table moves to stderr
           so the repair stays machine-readable. *)
        if explain then
          print_explain (if out = None then Fmt.stderr else Fmt.stdout) report;
        match out with
        | None -> print_string (Csv.save_string repaired)
        | Some _ -> ())

let repair_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT.csv"
          ~doc:
            "Write the repair here instead of stdout.  Refused when $(docv) \
             is the input file, unless $(b,--in-place) is given.")
  in
  let in_place =
    Arg.(
      value & flag
      & info [ "in-place" ]
          ~doc:
            "Overwrite $(b,DATA.csv) with the repair (or allow $(b,-o) to \
             point at it).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the cell-level provenance table: every changed cell with \
             its old and new value, resolving clause, plan cost and pass.")
  in
  let algorithm =
    Arg.(
      value
      & opt (some algorithm_conv) None
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:
            "Deprecated (W101): legacy spelling of $(b,--engine), one of \
             batch, v-inc, l-inc, w-inc.  Will be removed; use \
             $(b,--engine).")
  in
  let engine =
    Arg.(
      value
      & opt (some string) None
      & info [ "engine" ] ~docv:"NAME"
          ~doc:
            "Repair engine: $(b,batch) (BATCHREPAIR, any ruleset), $(b,inc) \
             / $(b,l-inc) / $(b,w-inc) (INCREPAIR orderings), or \
             $(b,opt-fd) (optimal value repair, acyclic FD-only rulesets).  \
             Overrides $(b,--algorithm).  An unknown name or an engine \
             whose Σ fragment does not cover the ruleset exits 2 with a \
             stable diagnostic.")
  in
  let partition =
    Arg.(
      value & flag
      & info [ "partition" ]
          ~doc:
            "Split the ruleset into its shard-safe clause groups (see \
             $(b,cfdclean analyze)) and repair each group independently — as \
             parallel pool tasks when $(b,--jobs) allows.  The output is \
             byte-identical to the unpartitioned repair.  Batch algorithm \
             only.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Snapshot the repair state to $(docv) at pass boundaries \
             (atomically), so an interrupted run can continue with \
             $(b,--resume).  Batch algorithm only.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Write a checkpoint every $(docv)-th pass boundary.")
  in
  let resume =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Continue from a $(b,--checkpoint) snapshot taken on the same \
             input, ruleset and configuration.  The finished repair is \
             byte-identical to the checkpointing run left uninterrupted.")
  in
  let deadline_passes =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-passes" ] ~docv:"N"
          ~doc:
            "Deterministic logical deadline: stop after $(docv) engine \
             boundaries (batch passes, opt-fd strata, inc tuples) and \
             return the best result so far, marked degraded.  Unlike \
             $(b,--deadline) the cut point is independent of the wall \
             clock, so degraded output is reproducible.")
  in
  Cmd.v
    (Cmd.info "repair" ~doc:"Compute a repair satisfying the CFDs")
    Term.(
      ret
        (const repair $ data $ cfds $ output $ in_place $ explain $ algorithm
       $ engine $ force_arg $ analyze_gate_arg $ partition $ jobs_arg
       $ format_arg $ metrics_arg $ trace_arg $ progress_arg $ fault_arg
       $ deadline_arg $ deadline_passes $ checkpoint $ checkpoint_every
       $ resume))

(* ---- check ---- *)

(* check is a thin front-end to the lint engine (errors only), keeping the
   original satisfiability-probe output and exit-code behavior. *)
let check schema_csv cfd_path format metrics trace progress fault =
  run_command ~command:"check" ~format ~metrics ~trace ~progress ~fault
  @@ fun () ->
  let* rel = load_csv schema_csv in
  let* ltabs = load_tableaus cfd_path in
  let schema = Relation.schema rel in
  let errors = Lint.run ~errors_only:true ~schema ltabs in
  let unsat = List.exists (fun d -> d.Diagnostic.code = Diagnostic.E001) errors in
  if unsat then
    succeed ~code:Dq_error.Exit.dirty
      (Report.make ~engine:"check"
         ~summary:[ ("satisfiable", Json.Bool false) ]
         ())
      (fun () ->
        Fmt.pr "UNSATISFIABLE: no non-empty instance can satisfy these CFDs@.")
  else
    match Cfd_parser.resolve schema (Cfd_parser.Located.strip_all ltabs) with
    | exception Invalid_argument msg -> Error (Dq_error.Invalid_input msg)
    | sigma ->
      succeed
        (Report.make ~engine:"check"
           ~summary:
             [
               ("satisfiable", Json.Bool true);
               ("clauses", Json.Int (Array.length sigma));
             ]
           ())
        (fun () ->
          Fmt.pr "satisfiable (%d normal-form clauses)@." (Array.length sigma))

let check_cmd =
  let data =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DATA.csv" ~doc:"Any CSV with the target header row.")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a CFD set for satisfiability")
    Term.(
      ret
        (const check $ data $ cfds $ format_arg $ metrics_arg $ trace_arg
       $ progress_arg $ fault_arg))

(* ---- lint ---- *)

let diagnostic_to_json d =
  let base =
    [
      ("code", Json.String (Diagnostic.code_to_string d.Diagnostic.code));
      ( "severity",
        Json.String (Diagnostic.severity_to_string (Diagnostic.severity d)) );
      ("message", Json.String d.Diagnostic.message);
    ]
  in
  let clause =
    match d.Diagnostic.clause with
    | Some c -> [ ("clause", Json.String c) ]
    | None -> []
  in
  let span =
    match d.Diagnostic.span with
    | Some s ->
      [
        ("line", Json.Int s.Cfd_parser.line);
        ("col", Json.Int s.Cfd_parser.col_start);
        ("end_col", Json.Int s.Cfd_parser.col_end);
      ]
    | None -> []
  in
  Json.Obj (base @ clause @ span)

(* `lint --explain CODE` prints the diagnostic catalog entry and ignores
   any ruleset argument — same text docs/ANALYSIS.md is built from. *)
let lint_explain code_str =
  match Diagnostic.code_of_string code_str with
  | None ->
    Error
      (Dq_error.Invalid_input
         (Fmt.str "--explain: unknown diagnostic code %S (codes: %s)" code_str
            (String.concat ", "
               (List.map Diagnostic.code_to_string Diagnostic.all_codes))))
  | Some code ->
    succeed
      (Report.make ~engine:"lint"
         ~summary:
           [
             ("code", Json.String (Diagnostic.code_to_string code));
             ( "severity",
               Json.String
                 (Diagnostic.severity_to_string
                    (Diagnostic.severity_of_code code)) );
             ("summary", Json.String (Diagnostic.describe code));
             ("explanation", Json.String (Diagnostic.explain code));
           ]
         ())
      (fun () -> Fmt.pr "%s@." (Diagnostic.explain code))

let lint cfd_path data_path errors_only explain format metrics trace progress
    fault =
  run_command ~command:"lint" ~format ~metrics ~trace ~progress ~fault
  @@ fun () ->
  match explain with
  | Some code_str -> lint_explain code_str
  | None ->
  let* cfd_path =
    match cfd_path with
    | Some p -> Ok p
    | None ->
      Error
        (Dq_error.Invalid_input
           "a CONSTRAINTS.cfd argument is required (or use --explain CODE)")
  in
  let* source =
    match
      let ic = open_in_bin cfd_path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> Ok s
    | exception Sys_error msg -> Error (Dq_error.Io msg)
  in
  let* schema =
    match data_path with
    | None -> Ok None
    | Some csv ->
      let* rel = load_csv csv in
      Ok (Some (Relation.schema rel))
  in
  (* A parse failure is itself a diagnostic (E000), so lint always
     produces a report — CI never has to special-case syntax errors. *)
  let diags =
    match Cfd_parser.parse_string_located source with
    | Error e ->
      [
        Diagnostic.make
          ~span:
            Cfd_parser.{ line = e.line; col_start = e.col; col_end = e.col + 1 }
          Diagnostic.E000 e.message;
      ]
    | Ok ltabs -> Lint.run ?schema ltabs
  in
  let diags =
    if errors_only then List.filter Diagnostic.is_error diags else diags
  in
  let errors = List.length (List.filter Diagnostic.is_error diags) in
  let report =
    Report.make ~engine:"lint"
      ~summary:
        [
          ("path", Json.String cfd_path);
          ("errors", Json.Int errors);
          ("warnings", Json.Int (List.length diags - errors));
        ]
      ()
  in
  succeed
    ~code:(if errors > 0 then Dq_error.Exit.dirty else Dq_error.Exit.ok)
    ~diagnostics:(List.map diagnostic_to_json diags) report (fun () ->
      List.iter
        (fun d -> Fmt.pr "@[<v>%a@]@." (Render.pp_text ~path:cfd_path ~source) d)
        diags;
      Fmt.pr "%s: %s@." cfd_path (Render.summary diags))

let lint_cmd =
  let cfds =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"CONSTRAINTS.cfd"
          ~doc:"Ruleset to lint; optional with $(b,--explain).")
  in
  let data =
    Arg.(
      value
      & opt (some file) None
      & info [ "data" ] ~docv:"DATA.csv"
          ~doc:
            "CSV whose header gives the schema to type-check attribute names \
             against (enables the E003 check).")
  in
  let errors_only =
    Arg.(
      value & flag
      & info [ "errors-only" ] ~doc:"Report only errors, not warnings.")
  in
  let explain =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"CODE"
          ~doc:
            "Print the catalog entry for one diagnostic code (e.g. \
             $(b,W004)) with a worked example, and exit.  See \
             $(b,docs/ANALYSIS.md) for the full catalog.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis of a CFD ruleset: satisfiability, conflicting or \
          redundant patterns, schema mismatches, cyclic clause interactions. \
          Exits 1 if any error (E-code) is found.")
    Term.(
      ret
        (const lint $ cfds $ data $ errors_only $ explain $ format_arg
       $ metrics_arg $ trace_arg $ progress_arg $ fault_arg))

(* ---- analyze ---- *)

(* Whole-ruleset interaction analysis (Interaction): dependency cycles
   with printable certificates, the shard-safety partition, oscillation
   pairs and (with --data) sampled cost estimates.  Exit 1 when the
   termination verdict is May_oscillate, mirroring detect's dirty exit. *)
let analyze cfd_path data_path sample_cap format metrics trace progress fault =
  run_command ~command:"analyze" ~format ~metrics ~trace ~progress ~fault
  @@ fun () ->
  let* () =
    if sample_cap < 0 then
      Error
        (Dq_error.Invalid_input
           (Fmt.str "--sample must be non-negative (got %d)" sample_cap))
    else Ok ()
  in
  let* ltabs = load_tableaus cfd_path in
  let* data =
    match data_path with
    | None -> Ok None
    | Some csv ->
      let* rel = load_csv csv in
      Ok (Some rel)
  in
  let schema =
    match data with
    | Some rel -> Relation.schema rel
    | None -> Lint.synthesize_schema ltabs
  in
  match Cfd_parser.resolve schema (Cfd_parser.Located.strip_all ltabs) with
  | exception Invalid_argument msg -> Error (Dq_error.Invalid_input msg)
  | sigma ->
    let a = Interaction.analyze ?data ~sample:sample_cap schema sigma in
    let attr = Schema.attribute schema in
    let attr_list ps = Json.List (List.map (fun p -> Json.String (attr p)) ps) in
    let name_span name =
      List.find_map
        (fun (lt : Cfd_parser.Located.tableau) ->
          if String.equal lt.Cfd_parser.Located.tab.Cfd.Tableau.name name then
            Some lt.Cfd_parser.Located.name_span
          else None)
        ltabs
    in
    (* The envelope diagnostics: one A001 per cyclic SCC (with its
       certificate), one A002 per oscillation pair, one A003 per hot
       clause.  Spans point at the name of the first clause involved. *)
    let diag_of_clause code cid fmt =
      let name = Cfd.name sigma.(cid) in
      Format.kasprintf
        (fun message ->
          Diagnostic.make ?span:(name_span name) ~clause:name code message)
        fmt
    in
    let diags =
      List.map
        (fun (c : Interaction.cycle) ->
          let witness = Interaction.cycle_to_string schema sigma c in
          match c.Interaction.steps with
          | (_, cid, _) :: _ ->
            diag_of_clause Diagnostic.A001 cid
              "attribute dependency cycle: %s" witness
          | [] ->
            Diagnostic.make Diagnostic.A001
              (Fmt.str "attribute dependency cycle: %s" witness))
        a.Interaction.cycles
      @ List.map
          (fun (o : Interaction.oscillation) ->
            diag_of_clause Diagnostic.A002 o.Interaction.a
              "clauses %s and %s feed each other's LHS (severity %s)"
              (Cfd.name sigma.(o.Interaction.a))
              (Cfd.name sigma.(o.Interaction.b))
              (Interaction.severity_to_string o.Interaction.severity))
          a.Interaction.oscillations
      @ List.filter_map
          (fun (c : Interaction.clause_cost) ->
            if c.Interaction.hot then
              Some
                (diag_of_clause Diagnostic.A003 c.Interaction.clause
                   "hot clause %s: violation density %.3f (threshold %.2f)"
                   (Cfd.name sigma.(c.Interaction.clause))
                   c.Interaction.violation_density Interaction.hot_threshold)
            else None)
          (Option.value ~default:[] a.Interaction.costs)
    in
    let diags = List.sort Diagnostic.compare diags in
    let cycle_json (c : Interaction.cycle) =
      Json.Obj
        [
          ("attrs", attr_list c.Interaction.attrs);
          ( "witness",
            Json.String (Interaction.cycle_to_string schema sigma c) );
        ]
    in
    let shard_json (s : Interaction.shard) =
      Json.Obj
        [
          ("shard", Json.Int s.Interaction.shard_id);
          ( "clauses",
            Json.List (List.map (fun i -> Json.Int i) s.Interaction.clauses)
          );
          ("attrs", attr_list s.Interaction.attrs);
          ("independent", Json.Bool s.Interaction.independent);
        ]
    in
    let osc_json (o : Interaction.oscillation) =
      Json.Obj
        [
          ("a", Json.Int o.Interaction.a);
          ("b", Json.Int o.Interaction.b);
          ( "severity",
            Json.String
              (Interaction.severity_to_string o.Interaction.severity) );
        ]
    in
    let cost_json (c : Interaction.clause_cost) =
      Json.Obj
        [
          ("clause", Json.Int c.Interaction.clause);
          ("name", Json.String (Cfd.name sigma.(c.Interaction.clause)));
          ("selectivity", Json.Float c.Interaction.selectivity);
          ("violation_density", Json.Float c.Interaction.violation_density);
          ("fanout", Json.Float c.Interaction.fanout);
          ("hot", Json.Bool c.Interaction.hot);
        ]
    in
    let terminating = a.Interaction.termination = Interaction.Terminating in
    let report =
      Report.make ~engine:"analyze"
        ~summary:
          ([
             ("path", Json.String cfd_path);
             ("clauses", Json.Int (Array.length sigma));
             ("attributes", Json.Int (Schema.arity schema));
             ( "termination",
               Json.String
                 (if terminating then "terminating" else "may-oscillate") );
             ("cycles", Json.List (List.map cycle_json a.Interaction.cycles));
             ("shards", Json.List (List.map shard_json a.Interaction.shards));
             ( "oscillations",
               Json.List (List.map osc_json a.Interaction.oscillations) );
           ]
          @
          match a.Interaction.costs with
          | None -> []
          | Some costs ->
            [ ("costs", Json.List (List.map cost_json costs)) ])
        ()
    in
    succeed
      ~code:(if terminating then Dq_error.Exit.ok else Dq_error.Exit.dirty)
      ~diagnostics:(List.map diagnostic_to_json diags) report
      (fun () ->
        Fmt.pr "%s: %d clauses over %d attributes@." cfd_path
          (Array.length sigma) (Schema.arity schema);
        (match a.Interaction.termination with
        | Interaction.Terminating ->
          Fmt.pr "termination: dependency graph is acyclic@."
        | Interaction.May_oscillate cycles ->
          Fmt.pr "termination: MAY OSCILLATE (%d cycle%s)@."
            (List.length cycles)
            (if List.length cycles = 1 then "" else "s");
          List.iter
            (fun c ->
              Fmt.pr "  cycle: %s@."
                (Interaction.cycle_to_string schema sigma c))
            cycles);
        Fmt.pr "shard plan: %d shard%s@."
          (List.length a.Interaction.shards)
          (if List.length a.Interaction.shards = 1 then "" else "s");
        List.iter
          (fun (s : Interaction.shard) ->
            (* Normal-form rulesets carry one clause per pattern row, all
               sharing the source CFD's name: collapse runs into a count
               so mined rulesets stay readable. *)
            let names =
              List.fold_left
                (fun acc i ->
                  let name = Cfd.name sigma.(i) in
                  match acc with
                  | (n, k) :: rest when String.equal n name ->
                    (n, k + 1) :: rest
                  | _ -> (name, 1) :: acc)
                [] s.Interaction.clauses
              |> List.rev_map (fun (n, k) ->
                     if k = 1 then n else Printf.sprintf "%s (%d rows)" n k)
            in
            Fmt.pr "  shard %d: clauses {%s} over {%s}%s@."
              s.Interaction.shard_id
              (String.concat ", " names)
              (String.concat ", " (List.map attr s.Interaction.attrs))
              (if s.Interaction.independent then ""
               else " (requires reconciliation)"))
          a.Interaction.shards;
        List.iter
          (fun (o : Interaction.oscillation) ->
            Fmt.pr "oscillation: %s <-> %s (severity %s)@."
              (Cfd.name sigma.(o.Interaction.a))
              (Cfd.name sigma.(o.Interaction.b))
              (Interaction.severity_to_string o.Interaction.severity))
          a.Interaction.oscillations;
        match a.Interaction.costs with
        | None -> ()
        | Some costs ->
          Fmt.pr
            "clause costs (sample of %d tuple%s):@."
            (min sample_cap
               (match data with
               | Some rel -> Relation.cardinality rel
               | None -> 0))
            (if sample_cap = 1 then "" else "s");
          List.iter
            (fun (c : Interaction.clause_cost) ->
              Fmt.pr
                "  %-10s sel %.3f  vio %.3f  fanout %.2f%s@."
                (Cfd.name sigma.(c.Interaction.clause))
                c.Interaction.selectivity c.Interaction.violation_density
                c.Interaction.fanout
                (if c.Interaction.hot then "  HOT" else ""))
            costs)

let analyze_cmd =
  let cfds =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  let data =
    Arg.(
      value
      & opt (some file) None
      & info [ "data" ] ~docv:"DATA.csv"
          ~doc:
            "Instance to estimate per-clause costs on (LHS selectivity, \
             violation density, repair fan-out) from a bounded sample.  Its \
             header also supplies the schema; without it one is synthesized \
             from the attributes the ruleset mentions.")
  in
  let sample =
    Arg.(
      value & opt int 2000
      & info [ "sample" ] ~docv:"N"
          ~doc:
            "Tuples of $(b,--data) to examine for the cost estimates (the \
             instance's first $(docv), so results are deterministic).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Whole-ruleset interaction analysis: the attribute dependency graph \
          with cycle certificates and a termination verdict, the shard-safety \
          partition consumed by $(b,repair --partition), oscillation pairs, \
          and (with $(b,--data)) sampled per-clause cost estimates.  Exits 1 \
          when the repair fixpoint may oscillate.")
    Term.(
      ret
        (const analyze $ cfds $ data $ sample $ format_arg $ metrics_arg
       $ trace_arg $ progress_arg $ fault_arg))

(* ---- sample ---- *)

let sample data_path cfd_path truth_path epsilon confidence sample_size force
    analyze_gate jobs format metrics trace progress fault deadline =
  run_command ~command:"sample" ~format ~metrics ~trace ~progress ~fault
  @@ fun () ->
  with_inputs ~force ~analyze_gate data_path cfd_path @@ fun rel sigma ->
  let* truth = load_csv truth_path in
  let* deadline = resolve_deadline deadline in
  with_jobs jobs @@ fun pool ->
  let* (repaired, _stats), _repair_report =
    Batch_repair.repair ~pool ~deadline rel sigma
  in
  let oracle t' =
    match Relation.find truth (Tuple.tid t') with
    | Some t -> not (Tuple.equal_values t t')
    | None -> true
  in
  let config = Sampling.default_config ~epsilon ~confidence ~sample_size () in
  let* sreport, report =
    Sampling.inspect ~deadline config ~original:rel ~repair:repaired ~sigma
      ~oracle
  in
  succeed
    ~code:
      (if sreport.Sampling.accepted then Dq_error.Exit.ok
       else Dq_error.Exit.dirty)
    report
    (fun () -> Fmt.pr "%a@." Sampling.pp_report sreport)

let sample_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  let truth =
    Arg.(
      required
      & pos 2 (some file) None
      & info [] ~docv:"TRUTH.csv"
          ~doc:"Ground truth standing in for the inspecting user.")
  in
  let epsilon =
    Arg.(value & opt float 0.05 & info [ "epsilon" ] ~doc:"Inaccuracy bound.")
  in
  let confidence =
    Arg.(value & opt float 0.95 & info [ "confidence" ] ~doc:"Confidence level.")
  in
  let size =
    Arg.(value & opt int 200 & info [ "sample-size" ] ~doc:"Tuples to inspect.")
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"Repair, then statistically assess the repair's accuracy")
    Term.(
      ret
        (const sample $ data $ cfds $ truth $ epsilon $ confidence $ size
       $ force_arg $ analyze_gate_arg $ jobs_arg $ format_arg $ metrics_arg
       $ trace_arg $ progress_arg $ fault_arg $ deadline_arg))

(* ---- generate ---- *)

let generate n rate seed out_prefix format metrics trace progress fault =
  run_command ~command:"generate" ~format ~metrics ~trace ~progress ~fault
  @@ fun () ->
  let ds = Datagen.generate (Datagen.default_params ~n_tuples:n ~seed ()) in
  let noise = Noise.inject (Noise.default_params ~rate ~seed ()) ds in
  let clean_path = out_prefix ^ "_clean.csv" in
  let dirty_path = out_prefix ^ "_dirty.csv" in
  let cfd_path = out_prefix ^ ".cfd" in
  let* () = save_csv ds.Datagen.dopt clean_path in
  let* () = save_csv noise.Noise.dirty dirty_path in
  let* () =
    match
      Atomic_io.write_file cfd_path (Cfd_parser.to_string ds.Datagen.tableaus)
    with
    | () -> Ok ()
    | exception Sys_error msg -> Error (Dq_error.Io msg)
  in
  succeed
    (Report.make ~engine:"generate"
       ~summary:
         [
           ("clean", Json.String clean_path);
           ("dirty", Json.String dirty_path);
           ("cfds", Json.String cfd_path);
           ("tuples", Json.Int n);
           ("dirtied", Json.Int (List.length noise.Noise.dirty_tids));
           ("pattern_rows", Json.Int (Datagen.pattern_row_count ds));
         ]
       ())
    (fun () ->
      Fmt.pr "wrote %s (%d tuples), %s (%d dirtied), %s (%d pattern rows)@."
        clean_path n dirty_path
        (List.length noise.Noise.dirty_tids)
        cfd_path
        (Datagen.pattern_row_count ds))

(* ---- discover ---- *)

let discover data_path out min_support min_confidence max_lhs jobs format
    metrics trace progress fault =
  run_command ~command:"discover" ~format ~metrics ~trace ~progress ~fault
  @@ fun () ->
  let* rel = load_csv data_path in
  with_jobs jobs @@ fun pool ->
  let config =
    Discovery.default_config ~max_lhs_size:max_lhs ~min_support ~min_confidence
      ()
  in
  let d = Discovery.discover ~pool ~config rel in
  let text = Cfd_parser.to_string d.Discovery.tableaus in
  let* () =
    match out with
    | None -> Ok ()
    | Some path -> (
      match Atomic_io.write_file path text with
      | () -> Ok ()
      | exception Sys_error msg -> Error (Dq_error.Io msg))
  in
  succeed
    (Report.make ~engine:"discover"
       ~summary:
         [
           ("variable_fds", Json.Int d.Discovery.n_variable);
           ("constant_rows", Json.Int d.Discovery.n_constant);
           ("ruleset", Json.String text);
         ]
       ())
    (fun () ->
      Fmt.epr "discovered %d embedded FDs and %d constant pattern rows@."
        d.Discovery.n_variable d.Discovery.n_constant;
      match out with None -> print_string text | Some _ -> ())

let discover_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT.cfd"
          ~doc:"Write the discovered CFDs here instead of stdout.")
  in
  let support =
    Arg.(
      value & opt int 10
      & info [ "min-support" ] ~doc:"Tuples a constant pattern row must cover.")
  in
  let confidence =
    Arg.(
      value & opt float 1.0
      & info [ "min-confidence" ]
          ~doc:"Fraction of covered tuples that must agree (1.0 = exact).")
  in
  let max_lhs =
    Arg.(
      value & opt int 2
      & info [ "max-lhs" ] ~doc:"Largest LHS attribute set to consider.")
  in
  Cmd.v
    (Cmd.info "discover" ~doc:"Mine CFDs from a (mostly clean) CSV file")
    Term.(
      ret
        (const discover $ data $ out $ support $ confidence $ max_lhs
       $ jobs_arg $ format_arg $ metrics_arg $ trace_arg $ progress_arg
       $ fault_arg))

let generate_cmd =
  let n = Arg.(value & opt int 5_000 & info [ "n" ] ~doc:"Number of tuples.") in
  let rate = Arg.(value & opt float 0.05 & info [ "rate" ] ~doc:"Noise rate.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.") in
  let prefix =
    Arg.(value & opt string "orders" & info [ "prefix" ] ~doc:"Output prefix.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic order dataset")
    Term.(
      ret
        (const generate $ n $ rate $ seed $ prefix $ format_arg $ metrics_arg
       $ trace_arg $ progress_arg $ fault_arg))

(* ---- serve ---- *)

(* serve is the one subcommand that does not go through run_command: it
   owns no stdout envelope (each HTTP response carries its own), prints
   one ready line so scripts can wait for the port, and runs until
   signalled.  kill -9 is the crash path the session store covers. *)
let serve port state_dir resume jobs log log_level no_metrics slow_request
    trace limits fault =
  (* Telemetry first, so the daemon's own start-up lines are captured.
     [--log -] (the default) sends JSON lines to stderr; [--log FILE]
     appends; [--no-log] leaves no sink installed. *)
  let log_ok =
    match log with
    | None -> Ok ()
    | Some "-" ->
      Dq_obs.Log.set_sink (Some (Dq_obs.Log.stderr_sink ()));
      Ok ()
    | Some path -> (
      match Dq_obs.Log.file_sink path with
      | Ok sink ->
        Dq_obs.Log.set_sink (Some sink);
        Ok ()
      | Error msg -> Error (Dq_error.Io msg))
  in
  match log_ok with
  | Error e ->
    Fmt.epr "cfdclean: %s@." (Dq_error.to_string e);
    `Ok (Dq_error.exit_code e)
  | Ok () -> (
    (match Dq_obs.Log.level_of_string log_level with
    | Some lvl -> Dq_obs.Log.set_level lvl
    | None -> ());
    (match trace with
    | None -> ()
    | Some path ->
      Dq_obs.Trace.set_enabled true;
      (* The daemon exits from a signal handler, so the dump rides
         at_exit rather than a normal return path. *)
      at_exit (fun () ->
          try Dq_obs.Trace.write path with Sys_error _ -> ()));
    let telemetry =
      {
        Dq_serve.Serve.metrics = not no_metrics;
        slow_request_s = slow_request;
      }
    in
    match arm_fault fault with
    | Error e ->
      Fmt.epr "cfdclean: %s@." (Dq_error.to_string e);
      `Ok (Dq_error.exit_code e)
    | Ok () -> (
      match
        Dq_serve.Serve.start
          { Dq_serve.Serve.port; state_dir; jobs; resume; telemetry; limits }
      with
      | Error e ->
        Fmt.epr "cfdclean: %s@." (Dq_error.to_string e);
        `Ok (Dq_error.exit_code e)
      | Ok d ->
        Fmt.pr "cfdclean serve: listening on http://127.0.0.1:%d@."
          (Dq_serve.Serve.port d);
        (* SIGTERM/SIGINT request a graceful drain: the handler only flips
           a flag — Serve.stop joins threads and takes locks, none of
           which is safe from a signal handler — and the poll loop below
           runs the drain on the main thread, then exits 0. *)
        let quit = Atomic.make false in
        let on_signal = Sys.Signal_handle (fun _ -> Atomic.set quit true) in
        (try Sys.set_signal Sys.sigterm on_signal
         with Invalid_argument _ -> ());
        (try Sys.set_signal Sys.sigint on_signal
         with Invalid_argument _ -> ());
        (* Poll rather than Serve.wait: with every thread parked in a
           blocking C call (accept, join), a pending SIGTERM has no
           safepoint to run its handler at; Thread.delay wakes this thread
           and the signal is processed on return. *)
        while not (Atomic.get quit) do
          Thread.delay 0.1
        done;
        Dq_serve.Serve.stop d;
        `Ok 0))

let serve_cmd =
  let port =
    Arg.(
      value & opt int 8080
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "TCP port to listen on (loopback only).  $(b,0) picks an \
             ephemeral port, reported on the ready line.")
  in
  let state_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Checkpoint every committed session mutation to $(docv) \
             (atomically, before the response is acknowledged), so \
             $(b,--resume) after a crash serves byte-identical relations.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Load checkpointed sessions back from $(b,--state-dir) first.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the repair passes (default 1).  Responses \
             are identical at any job count.")
  in
  let log =
    Arg.(
      value
      & opt (some string) (Some "-")
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Structured JSON-lines log destination: $(b,-) for stderr (the \
             default) or a file to append to.  One line per request \
             ($(b,http.access)) plus lifecycle events, each carrying the \
             request id.")
  in
  let no_log =
    Arg.(
      value & flag
      & info [ "no-log" ] ~doc:"Disable structured logging entirely.")
  in
  let log_level =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Drop log lines below $(docv): $(b,debug), $(b,info), $(b,warn) \
             or $(b,error).")
  in
  let no_metrics =
    Arg.(
      value & flag
      & info [ "no-metrics" ]
          ~doc:
            "Disable metrics collection and the $(b,/v1/metrics) endpoint.  \
             Together with $(b,--no-log) this is the zero-overhead \
             configuration: responses are byte-identical to a daemon \
             without telemetry.")
  in
  let slow_request =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-request" ] ~docv:"SECS"
          ~doc:"Warn-log any request slower than $(docv) seconds.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event dump of every request's span tree \
             to $(docv) on exit (engine phases nest under their request \
             ids).")
  in
  let log_term = Term.(const (fun log no_log -> if no_log then None else log) $ log $ no_log) in
  let max_connections =
    Arg.(
      value & opt int 0
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Refuse (503, without spawning a handler) connections past \
             $(docv) concurrently open ones.  $(b,0) (the default) means \
             unbounded.")
  in
  let max_inflight =
    Arg.(
      value & opt int 0
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Answer 503 past $(docv) requests in flight; $(b,/v1/health) \
             and $(b,/v1/metrics) stay exempt so an overloaded daemon \
             remains observable.  $(b,0) means unbounded.")
  in
  let queue_depth =
    Arg.(
      value & opt int 0
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Shed ingest/resolve with 429 + $(b,retry-after) when the \
             session's FIFO lane already holds $(docv) jobs.  $(b,0) means \
             unbounded.")
  in
  let ingest_workers =
    Arg.(
      value & opt int 0
      & info [ "ingest-workers" ] ~docv:"N"
          ~doc:
            "Run whole ingest jobs on $(docv) worker domains, so \
             independent sessions repair in parallel.  $(b,0) (the \
             default) runs them on the handler thread.")
  in
  let keep_alive =
    Arg.(
      value & flag
      & info [ "keep-alive" ]
          ~doc:
            "HTTP/1.1 persistent connections (default: close after one \
             response).  Idle connections close after $(b,--idle-timeout).")
  in
  let idle_timeout =
    Arg.(
      value & opt float 5.
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:
            "With $(b,--keep-alive), close a connection idle between \
             requests for $(docv) seconds (default 5).")
  in
  let read_timeout =
    Arg.(
      value & opt float 0.
      & info [ "read-timeout" ] ~docv:"SECS"
          ~doc:
            "Bound every socket read within a request (slowloris defense: \
             a stalled mid-request peer gets 408).  $(b,0) disables.")
  in
  let evict_idle =
    Arg.(
      value & opt float 0.
      & info [ "evict-idle" ] ~docv:"SECS"
          ~doc:
            "Checkpoint and drop sessions idle for $(docv) seconds \
             (requires $(b,--state-dir)); the next request naming the \
             session reloads it transparently.  $(b,0) disables.")
  in
  let breaker_threshold =
    Arg.(
      value & opt int 0
      & info [ "breaker-threshold" ] ~docv:"N"
          ~doc:
            "Quarantine a session (status $(b,engine_failed), requests \
             answer 503) after $(docv) consecutive engine faults, until \
             $(b,POST /v1/sessions/ID/resume).  $(b,0) disables.")
  in
  let drain_timeout =
    Arg.(
      value & opt float 30.
      & info [ "drain-timeout" ] ~docv:"SECS"
          ~doc:
            "On SIGTERM/SIGINT, wait up to $(docv) seconds (default 30) \
             for in-flight and queued work to finish before force-closing \
             straggler connections.")
  in
  let fault_plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-plan" ] ~docv:"PLAN"
          ~doc:
            "Arm the fault-injection plan (SITE@HIT or SITE@HIT:delay-MS, \
             comma-separated) — the chaos-soak hook.  Network sites: \
             $(b,serve.accept), $(b,serve.read), $(b,serve.write), \
             $(b,serve.ingest).")
  in
  let limits_term =
    let make max_connections max_inflight queue_depth ingest_workers
        keep_alive idle_timeout_s read_timeout_s evict_idle_s
        breaker_threshold drain_timeout_s =
      {
        Dq_serve.Serve.max_connections;
        max_inflight;
        queue_depth;
        ingest_workers;
        keep_alive;
        idle_timeout_s;
        read_timeout_s;
        evict_idle_s;
        breaker_threshold;
        drain_timeout_s;
      }
    in
    Term.(
      const make $ max_connections $ max_inflight $ queue_depth
      $ ingest_workers $ keep_alive $ idle_timeout $ read_timeout
      $ evict_idle $ breaker_threshold $ drain_timeout)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Streaming repair daemon: per-session clean relations behind a \
          versioned HTTP/JSON API (see docs/SERVE.md)")
    Term.(
      ret
        (const serve $ port $ state_dir $ resume $ jobs $ log_term $ log_level
       $ no_metrics $ slow_request $ trace $ limits_term $ fault_plan))

let () =
  let doc = "CFD-based data cleaning (Cong et al., VLDB 2007)" in
  let info = Cmd.info "cfdclean" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            detect_cmd;
            repair_cmd;
            check_cmd;
            lint_cmd;
            analyze_cmd;
            sample_cmd;
            discover_cmd;
            generate_cmd;
            serve_cmd;
          ]))
