(* cfdclean: CFD-based data cleaning from the command line.

   Subcommands:
     detect    report CFD violations in a CSV file
     repair    repair a CSV file (BATCHREPAIR or INCREPAIR)
     check     check a CFD file for satisfiability
     lint      static analysis of a CFD file (E/W diagnostic codes)
     sample    repair, then estimate the repair's inaccuracy rate by
               stratified sampling against a ground-truth file
     generate  emit a synthetic order dataset (clean + dirty + CFDs)

   Data is CSV with a header row; constraints use the textual CFD format
   (see the dataqual.cfd documentation or `cfdclean generate`). *)

open Cmdliner
open Dq_relation
open Dq_cfd
open Dq_core
open Dq_analysis
open Dq_workload
module Pool = Dq_parallel.Pool

let load_tableaus path =
  match Cfd_parser.parse_file_located path with
  | Error e -> `Error (false, Fmt.str "%s: %a" path Cfd_parser.pp_error e)
  | Ok ltabs -> `Ok ltabs

(* detect/repair/sample refuse a ruleset with lint errors unless --force:
   an unsatisfiable or ill-typed Σ makes their output meaningless. *)
let with_inputs ?(force = false) data_path cfd_path k =
  match Csv.load_file data_path with
  | exception Failure msg -> `Error (false, msg)
  | exception Sys_error msg -> `Error (false, msg)
  | rel -> (
    match load_tableaus cfd_path with
    | `Error _ as e -> e
    | `Ok ltabs -> (
      let schema = Relation.schema rel in
      let errors =
        if force then []
        else Lint.run ~errors_only:true ~schema ltabs
      in
      if errors <> [] then
        `Error
          ( false,
            Fmt.str
              "%s: ruleset has %d lint error%s; run `cfdclean lint %s --data \
               %s` for details, or pass --force"
              cfd_path (List.length errors)
              (if List.length errors = 1 then "" else "s")
              cfd_path data_path )
      else
        match Cfd_parser.resolve schema (Cfd_parser.Located.strip_all ltabs) with
        | sigma -> k rel sigma
        | exception Invalid_argument msg -> `Error (false, msg)))

let force_arg =
  Arg.(
    value & flag
    & info [ "force" ]
        ~doc:"Run even if the ruleset has lint errors (see $(b,cfdclean lint)).")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel detection and scoring passes \
           (default: the recommended domain count for this machine).  \
           Results are identical at any job count.")

(* Validate --jobs and run [k] with a pool of that many domains. *)
let with_jobs jobs k =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  if jobs < 1 then
    `Error (false, Fmt.str "--jobs must be at least 1 (got %d)" jobs)
  else Pool.with_pool ~jobs k

(* ---- detect ---- *)

let detect data_path cfd_path verbose force jobs =
  with_inputs ~force data_path cfd_path @@ fun rel sigma ->
  with_jobs jobs @@ fun pool ->
  let counts = Violation.vio_counts ~pool rel sigma in
  let dirty = Hashtbl.length counts in
  let total = Hashtbl.fold (fun _ n acc -> acc + n) counts 0 in
  Fmt.pr "%d tuples, %d clauses: %d violating tuples, vio(D) = %d@."
    (Relation.cardinality rel) (Array.length sigma) dirty total;
  if verbose then
    List.iter (Fmt.pr "  %a@." Violation.pp) (Violation.find_all ~pool rel sigma);
  `Ok (if dirty = 0 then 0 else 1)

let detect_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"List each violation.")
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Report CFD violations in a CSV file")
    Term.(ret (const detect $ data $ cfds $ verbose $ force_arg $ jobs_arg))

(* ---- repair ---- *)

type algorithm = Batch | Inc of Inc_repair.ordering

let algorithm_conv =
  let parse = function
    | "batch" -> Ok Batch
    | "inc" | "v-inc" -> Ok (Inc Inc_repair.By_violations)
    | "l-inc" -> Ok (Inc Inc_repair.Linear)
    | "w-inc" -> Ok (Inc Inc_repair.By_weight)
    | s -> Error (`Msg (Fmt.str "unknown algorithm %S" s))
  in
  let print ppf = function
    | Batch -> Fmt.string ppf "batch"
    | Inc Inc_repair.By_violations -> Fmt.string ppf "v-inc"
    | Inc Inc_repair.Linear -> Fmt.string ppf "l-inc"
    | Inc Inc_repair.By_weight -> Fmt.string ppf "w-inc"
  in
  Arg.conv (parse, print)

let repair data_path cfd_path output algorithm force jobs =
  with_inputs ~force data_path cfd_path @@ fun rel sigma ->
  if not (Satisfiability.is_satisfiable (Relation.schema rel) sigma) then
    `Error (false, "the CFD set is unsatisfiable; no repair exists")
  else
    with_jobs jobs @@ fun pool ->
    begin
    let repaired =
      match algorithm with
      | Batch ->
        let repaired, stats = Batch_repair.repair ~pool rel sigma in
        Fmt.epr "batchrepair: %a@." Batch_repair.pp_stats stats;
        repaired
      | Inc ordering ->
        let repaired, stats = Inc_repair.repair_dirty ~pool ~ordering rel sigma in
        Fmt.epr "%s: %a@."
          (Inc_repair.ordering_name ordering)
          Inc_repair.pp_stats stats;
        repaired
    in
    Fmt.epr "repair cost: %.3f; dif: %d cells@."
      (Cost.repair_cost ~original:rel ~repair:repaired)
      (Relation.dif rel repaired);
    (match output with
    | Some path -> Csv.save_file repaired path
    | None -> print_string (Csv.save_string repaired));
    `Ok 0
    end

let repair_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT.csv"
          ~doc:"Write the repair here instead of stdout.")
  in
  let algorithm =
    Arg.(
      value & opt algorithm_conv Batch
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:"One of batch, v-inc, l-inc, w-inc.")
  in
  Cmd.v
    (Cmd.info "repair" ~doc:"Compute a repair satisfying the CFDs")
    Term.(
      ret
        (const repair $ data $ cfds $ output $ algorithm $ force_arg $ jobs_arg))

(* ---- check ---- *)

(* check is a thin front-end to the lint engine (errors only), keeping the
   original satisfiability-probe output and exit-code behavior. *)
let check schema_csv cfd_path =
  match Csv.load_file schema_csv with
  | exception Failure msg -> `Error (false, msg)
  | exception Sys_error msg -> `Error (false, msg)
  | rel -> (
    match load_tableaus cfd_path with
    | `Error _ as e -> e
    | `Ok ltabs -> (
      let schema = Relation.schema rel in
      let errors = Lint.run ~errors_only:true ~schema ltabs in
      let unsat =
        List.exists (fun d -> d.Diagnostic.code = Diagnostic.E001) errors
      in
      if unsat then begin
        Fmt.pr "UNSATISFIABLE: no non-empty instance can satisfy these CFDs@.";
        `Ok 1
      end
      else
        match
          Cfd_parser.resolve schema (Cfd_parser.Located.strip_all ltabs)
        with
        | exception Invalid_argument msg -> `Error (false, msg)
        | sigma ->
          Fmt.pr "satisfiable (%d normal-form clauses)@." (Array.length sigma);
          `Ok 0))

let check_cmd =
  let data =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DATA.csv" ~doc:"Any CSV with the target header row.")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a CFD set for satisfiability")
    Term.(ret (const check $ data $ cfds))

(* ---- lint ---- *)

type lint_format = Text | Json

let lint cfd_path data_path format errors_only =
  let source =
    match
      let ic = open_in_bin cfd_path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | s -> Ok s
    | exception Sys_error msg -> Error msg
  in
  match source with
  | Error msg -> `Error (false, msg)
  | Ok source -> (
    let schema =
      match data_path with
      | None -> Ok None
      | Some csv -> (
        match Csv.load_file csv with
        | rel -> Ok (Some (Relation.schema rel))
        | exception Failure msg -> Error msg
        | exception Sys_error msg -> Error msg)
    in
    match schema with
    | Error msg -> `Error (false, msg)
    | Ok schema ->
      (* A parse failure is itself a diagnostic (E000), so lint always
         produces a report — CI never has to special-case syntax errors. *)
      let diags =
        match Cfd_parser.parse_string_located source with
        | Error e ->
          [
            Diagnostic.make
              ~span:
                Cfd_parser.
                  { line = e.line; col_start = e.col; col_end = e.col + 1 }
              Diagnostic.E000 e.message;
          ]
        | Ok ltabs -> Lint.run ?schema ltabs
      in
      let diags =
        if errors_only then List.filter Diagnostic.is_error diags else diags
      in
      (match format with
      | Json -> print_string (Render.to_json ~path:cfd_path diags)
      | Text ->
        List.iter
          (fun d ->
            Fmt.pr "@[<v>%a@]@." (Render.pp_text ~path:cfd_path ~source) d)
          diags;
        Fmt.pr "%s: %s@." cfd_path (Render.summary diags));
      `Ok (if List.exists Diagnostic.is_error diags then 1 else 0))

let lint_cmd =
  let cfds =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  let data =
    Arg.(
      value
      & opt (some file) None
      & info [ "data" ] ~docv:"DATA.csv"
          ~doc:
            "CSV whose header gives the schema to type-check attribute names \
             against (enables the E003 check).")
  in
  let format =
    let parse = function
      | "text" -> Ok Text
      | "json" -> Ok Json
      | s -> Error (`Msg (Fmt.str "unknown format %S" s))
    in
    let print ppf = function
      | Text -> Fmt.string ppf "text"
      | Json -> Fmt.string ppf "json"
    in
    Arg.(
      value
      & opt (conv (parse, print)) Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  let errors_only =
    Arg.(
      value & flag
      & info [ "errors-only" ] ~doc:"Report only errors, not warnings.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis of a CFD ruleset: satisfiability, conflicting or \
          redundant patterns, schema mismatches, cyclic clause interactions. \
          Exits 1 if any error (E-code) is found.")
    Term.(ret (const lint $ cfds $ data $ format $ errors_only))

(* ---- sample ---- *)

let sample data_path cfd_path truth_path epsilon confidence sample_size force
    jobs =
  with_inputs ~force data_path cfd_path @@ fun rel sigma ->
  match Csv.load_file truth_path with
  | exception Failure msg -> `Error (false, msg)
  | truth ->
    with_jobs jobs @@ fun pool ->
    let repaired, _ = Batch_repair.repair ~pool rel sigma in
    let oracle t' =
      match Relation.find truth (Tuple.tid t') with
      | Some t -> not (Tuple.equal_values t t')
      | None -> true
    in
    let config = Sampling.default_config ~epsilon ~confidence ~sample_size () in
    let report =
      Sampling.inspect config ~original:rel ~repair:repaired ~sigma ~oracle
    in
    Fmt.pr "%a@." Sampling.pp_report report;
    `Ok (if report.Sampling.accepted then 0 else 1)

let sample_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let cfds =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"CONSTRAINTS.cfd")
  in
  let truth =
    Arg.(
      required
      & pos 2 (some file) None
      & info [] ~docv:"TRUTH.csv"
          ~doc:"Ground truth standing in for the inspecting user.")
  in
  let epsilon =
    Arg.(value & opt float 0.05 & info [ "epsilon" ] ~doc:"Inaccuracy bound.")
  in
  let confidence =
    Arg.(value & opt float 0.95 & info [ "confidence" ] ~doc:"Confidence level.")
  in
  let size =
    Arg.(value & opt int 200 & info [ "sample-size" ] ~doc:"Tuples to inspect.")
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"Repair, then statistically assess the repair's accuracy")
    Term.(
      ret
        (const sample $ data $ cfds $ truth $ epsilon $ confidence $ size
       $ force_arg $ jobs_arg))

(* ---- generate ---- *)

let generate n rate seed out_prefix =
  let ds = Datagen.generate (Datagen.default_params ~n_tuples:n ~seed ()) in
  let noise = Noise.inject (Noise.default_params ~rate ~seed ()) ds in
  let clean_path = out_prefix ^ "_clean.csv" in
  let dirty_path = out_prefix ^ "_dirty.csv" in
  let cfd_path = out_prefix ^ ".cfd" in
  Csv.save_file ds.Datagen.dopt clean_path;
  Csv.save_file noise.Noise.dirty dirty_path;
  let oc = open_out cfd_path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Cfd_parser.to_string ds.Datagen.tableaus));
  Fmt.pr "wrote %s (%d tuples), %s (%d dirtied), %s (%d pattern rows)@."
    clean_path n dirty_path
    (List.length noise.Noise.dirty_tids)
    cfd_path
    (Datagen.pattern_row_count ds);
  `Ok 0

(* ---- discover ---- *)

let discover data_path out min_support min_confidence max_lhs jobs =
  match Csv.load_file data_path with
  | exception Failure msg -> `Error (false, msg)
  | exception Sys_error msg -> `Error (false, msg)
  | rel ->
    with_jobs jobs @@ fun pool ->
    let config =
      Discovery.default_config ~max_lhs_size:max_lhs ~min_support
        ~min_confidence ()
    in
    let d = Discovery.discover ~pool ~config rel in
    Fmt.epr "discovered %d embedded FDs and %d constant pattern rows@."
      d.Discovery.n_variable d.Discovery.n_constant;
    let text = Cfd_parser.to_string d.Discovery.tableaus in
    (match out with
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text)
    | None -> print_string text);
    `Ok 0

let discover_cmd =
  let data =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DATA.csv")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT.cfd"
          ~doc:"Write the discovered CFDs here instead of stdout.")
  in
  let support =
    Arg.(
      value & opt int 10
      & info [ "min-support" ] ~doc:"Tuples a constant pattern row must cover.")
  in
  let confidence =
    Arg.(
      value & opt float 1.0
      & info [ "min-confidence" ]
          ~doc:"Fraction of covered tuples that must agree (1.0 = exact).")
  in
  let max_lhs =
    Arg.(
      value & opt int 2
      & info [ "max-lhs" ] ~doc:"Largest LHS attribute set to consider.")
  in
  Cmd.v
    (Cmd.info "discover" ~doc:"Mine CFDs from a (mostly clean) CSV file")
    Term.(
      ret
        (const discover $ data $ out $ support $ confidence $ max_lhs
       $ jobs_arg))

let generate_cmd =
  let n = Arg.(value & opt int 5_000 & info [ "n" ] ~doc:"Number of tuples.") in
  let rate = Arg.(value & opt float 0.05 & info [ "rate" ] ~doc:"Noise rate.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.") in
  let prefix =
    Arg.(value & opt string "orders" & info [ "prefix" ] ~doc:"Output prefix.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic order dataset")
    Term.(ret (const generate $ n $ rate $ seed $ prefix))

let () =
  let doc = "CFD-based data cleaning (Cong et al., VLDB 2007)" in
  let info = Cmd.info "cfdclean" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            detect_cmd;
            repair_cmd;
            check_cmd;
            lint_cmd;
            sample_cmd;
            discover_cmd;
            generate_cmd;
          ]))
